package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fastreg/internal/types"
)

// Envelope frames a payload with addressing and correlation metadata. The
// in-process simulator passes envelopes directly; the codec below serializes
// them for byte-stream transports.
//
// Key routes the payload to one register inside a multiplexed server
// (netsim.MultiLive): a single server fleet hosts every key's protocol
// state, and the envelope's key selects which one handles the message. The
// empty key addresses the sole register of a single-register cluster, so
// the per-register runtimes need no special casing.
type Envelope struct {
	From    types.ProcID
	To      types.ProcID
	Key     string // register name in a multiplexed cluster; "" for single-register
	OpID    uint64 // client-local operation sequence number
	Round   uint8  // round-trip index within the operation (1 or 2)
	IsReply bool
	// Epoch and Weight carry the continuous-audit cutover state (Huang's
	// weight-throwing termination detection, internal/epoch). The client
	// stamps requests with the epoch its op borrowed from and the dyadic
	// weight atoms it attached; the server echoes both on the reply so
	// weight travels with the message it covers. Zero on both fields means
	// no coordinator is attached — the fields cost 16 bytes per frame and
	// nothing else.
	Epoch   uint64
	Weight  uint64
	Payload Message
}

// String renders the envelope for traces.
func (e Envelope) String() string {
	dir := "→"
	if e.IsReply {
		dir = "⇠"
	}
	key := ""
	if e.Key != "" {
		key = "[" + e.Key + "]"
	}
	return fmt.Sprintf("%s%s%s%s op%d.%d %s", e.From, dir, e.To, key, e.OpID, e.Round, e.Payload)
}

// Codec errors.
var (
	ErrTruncated   = errors.New("proto: truncated message")
	ErrBadKind     = errors.New("proto: unknown message kind")
	ErrOversize    = errors.New("proto: frame exceeds limit")
	errBadProcRole = errors.New("proto: invalid process role on wire")
	errBadFlag     = errors.New("proto: invalid boolean flag on wire")
)

// MaxFrame bounds a single encoded envelope; anything larger is rejected to
// keep a malformed stream from forcing huge allocations.
const MaxFrame = 1 << 20

type writer struct {
	buf []byte
}

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.BigEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.BigEndian.AppendUint64(w.buf, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}
func (w *writer) proc(p types.ProcID) {
	w.u8(uint8(p.Role))
	w.u32(uint32(p.Index))
}
func (w *writer) value(v types.Value) {
	w.i64(v.Tag.TS)
	w.proc(v.Tag.WID)
	w.str(v.Data)
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

func (r *reader) str() string {
	n := r.u32()
	if n > MaxFrame {
		r.fail(ErrOversize)
		return ""
	}
	b := r.take(int(n))
	return string(b)
}

func (r *reader) proc() types.ProcID {
	role := types.Role(r.u8())
	idx := r.u32()
	if r.err != nil {
		return types.ProcID{}
	}
	if role > types.RoleWriter {
		r.fail(errBadProcRole)
		return types.ProcID{}
	}
	if idx > math.MaxInt32 {
		r.fail(ErrOversize)
		return types.ProcID{}
	}
	return types.ProcID{Role: role, Index: int(idx)}
}

func (r *reader) value() types.Value {
	ts := r.i64()
	wid := r.proc()
	data := r.str()
	return types.Value{Tag: types.Tag{TS: ts, WID: wid}, Data: data}
}

// Encode serializes an envelope to a self-delimiting frame:
// a 4-byte big-endian length followed by the body.
func Encode(e Envelope) ([]byte, error) { return AppendEnvelope(nil, e) }

// AppendEnvelope appends the envelope's frame (as produced by Encode) to
// dst and returns the extended slice. Batch assembly and pooling callers
// use it to amortize allocations across frames.
func AppendEnvelope(dst []byte, e Envelope) ([]byte, error) {
	if e.Payload == nil {
		return nil, ErrBadKind
	}
	start := len(dst)
	w := writer{buf: dst}
	w.u32(0) // length placeholder
	w.proc(e.From)
	w.proc(e.To)
	w.str(e.Key)
	w.u64(e.OpID)
	w.u8(e.Round)
	if e.IsReply {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u64(e.Epoch)
	w.u64(e.Weight)
	w.u8(uint8(e.Payload.Kind()))
	switch m := e.Payload.(type) {
	case Query:
		// no body
	case QueryAck:
		w.value(m.Val)
	case Update:
		w.value(m.Val)
	case UpdateAck:
		// no body
	case FastRead:
		w.u32(uint32(len(m.ValQueue)))
		for _, v := range m.ValQueue {
			w.value(v)
		}
	case FastReadAck:
		w.u32(uint32(len(m.Vector)))
		for _, ent := range m.Vector {
			w.value(ent.Val)
			w.u32(uint32(len(ent.Updated)))
			for _, p := range ent.Updated {
				w.proc(p)
			}
		}
	case LogAck:
		w.u32(uint32(len(m.Events)))
		for _, ev := range m.Events {
			w.proc(ev.Client)
			w.value(ev.Val)
		}
	default:
		return nil, fmt.Errorf("%w: %T", ErrBadKind, e.Payload)
	}
	body := len(w.buf) - start - 4
	if body > MaxFrame {
		return nil, ErrOversize
	}
	binary.BigEndian.PutUint32(w.buf[start:start+4], uint32(body))
	return w.buf, nil
}

// Decode parses one frame produced by Encode. It returns the envelope and
// the number of bytes consumed, so callers can decode from a stream buffer.
func Decode(buf []byte) (Envelope, int, error) {
	if len(buf) < 4 {
		return Envelope{}, 0, ErrTruncated
	}
	body := binary.BigEndian.Uint32(buf[:4])
	if body > MaxFrame {
		return Envelope{}, 0, ErrOversize
	}
	total := 4 + int(body)
	if len(buf) < total {
		return Envelope{}, 0, ErrTruncated
	}
	r := &reader{buf: buf[4:total]}
	var e Envelope
	e.From = r.proc()
	e.To = r.proc()
	e.Key = r.str()
	e.OpID = r.u64()
	e.Round = r.u8()
	// Strict canonical format: the reply flag must be exactly 0 or 1, so
	// every accepted frame re-encodes to the same bytes.
	switch flag := r.u8(); flag {
	case 0:
	case 1:
		e.IsReply = true
	default:
		r.fail(errBadFlag)
	}
	e.Epoch = r.u64()
	e.Weight = r.u64()
	kind := Kind(r.u8())
	switch kind {
	case KindQuery:
		e.Payload = Query{}
	case KindQueryAck:
		e.Payload = QueryAck{Val: r.value()}
	case KindUpdate:
		e.Payload = Update{Val: r.value()}
	case KindUpdateAck:
		e.Payload = UpdateAck{}
	case KindFastRead:
		n := r.u32()
		if r.err == nil && int(n) > MaxFrame/8 {
			r.fail(ErrOversize)
		}
		m := FastRead{}
		for i := uint32(0); i < n && r.err == nil; i++ {
			m.ValQueue = append(m.ValQueue, r.value())
		}
		e.Payload = m
	case KindFastReadAck:
		n := r.u32()
		if r.err == nil && int(n) > MaxFrame/8 {
			r.fail(ErrOversize)
		}
		m := FastReadAck{}
		for i := uint32(0); i < n && r.err == nil; i++ {
			ent := VectorEntry{Val: r.value()}
			k := r.u32()
			if r.err == nil && int(k) > MaxFrame/8 {
				r.fail(ErrOversize)
			}
			for j := uint32(0); j < k && r.err == nil; j++ {
				ent.Updated = append(ent.Updated, r.proc())
			}
			m.Vector = append(m.Vector, ent)
		}
		e.Payload = m
	case KindLogAck:
		n := r.u32()
		if r.err == nil && int(n) > MaxFrame/8 {
			r.fail(ErrOversize)
		}
		m := LogAck{}
		for i := uint32(0); i < n && r.err == nil; i++ {
			m.Events = append(m.Events, LogEvent{Client: r.proc(), Val: r.value()})
		}
		e.Payload = m
	default:
		return Envelope{}, 0, fmt.Errorf("%w: kind %d", ErrBadKind, kind)
	}
	if r.err != nil {
		return Envelope{}, 0, r.err
	}
	if r.off != len(r.buf) {
		return Envelope{}, 0, fmt.Errorf("proto: %d trailing bytes in frame", len(r.buf)-r.off)
	}
	return e, total, nil
}

// WriteFrame encodes e and writes the frame to w.
func WriteFrame(w io.Writer, e Envelope) error {
	b, err := Encode(e)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads exactly one frame from r and decodes it.
func ReadFrame(r io.Reader) (Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Envelope{}, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > MaxFrame {
		return Envelope{}, ErrOversize
	}
	buf := make([]byte, 4+body)
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return Envelope{}, err
	}
	e, _, err := Decode(buf)
	return e, err
}
