package proto

import (
	"strings"
	"testing"

	"fastreg/internal/types"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindQuery:       "QUERY",
		KindQueryAck:    "READACK",
		KindUpdate:      "WRITE",
		KindUpdateAck:   "WRITEACK",
		KindFastRead:    "READ",
		KindFastReadAck: "READACK*",
		KindInvalid:     "INVALID",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestMessageKinds(t *testing.T) {
	cases := []struct {
		m    Message
		want Kind
	}{
		{Query{}, KindQuery},
		{QueryAck{}, KindQueryAck},
		{Update{}, KindUpdate},
		{UpdateAck{}, KindUpdateAck},
		{FastRead{}, KindFastRead},
		{FastReadAck{}, KindFastReadAck},
	}
	for _, c := range cases {
		if got := c.m.Kind(); got != c.want {
			t.Errorf("%T.Kind() = %v, want %v", c.m, got, c.want)
		}
		if c.m.String() == "" {
			t.Errorf("%T.String() empty", c.m)
		}
	}
}

func TestNormalizeUpdated(t *testing.T) {
	in := []types.ProcID{types.Writer(2), types.Reader(1), types.Writer(2), types.Reader(1), types.Writer(1)}
	out := NormalizeUpdated(in)
	want := []types.ProcID{types.Reader(1), types.Writer(1), types.Writer(2)}
	if len(out) != len(want) {
		t.Fatalf("len = %d, want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestNormalizeUpdatedEmpty(t *testing.T) {
	if got := NormalizeUpdated(nil); len(got) != 0 {
		t.Errorf("NormalizeUpdated(nil) = %v", got)
	}
}

func TestVectorEntryCloneIsDeep(t *testing.T) {
	e := VectorEntry{
		Val:     types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "v"},
		Updated: []types.ProcID{types.Reader(1)},
	}
	c := e.Clone()
	c.Updated[0] = types.Reader(9)
	if e.Updated[0] != types.Reader(1) {
		t.Error("Clone must not alias the updated slice")
	}
}

func TestVectorEntryHasUpdated(t *testing.T) {
	e := VectorEntry{Updated: []types.ProcID{types.Reader(1), types.Writer(2)}}
	if !e.HasUpdated(types.Reader(1)) || !e.HasUpdated(types.Writer(2)) {
		t.Error("HasUpdated missed a member")
	}
	if e.HasUpdated(types.Reader(2)) {
		t.Error("HasUpdated false positive")
	}
}

func TestFastReadAckEntryAndValues(t *testing.T) {
	v1 := types.Value{Tag: types.Tag{TS: 2, WID: types.Writer(1)}, Data: "b"}
	v2 := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(2)}, Data: "a"}
	ack := FastReadAck{Vector: []VectorEntry{{Val: v1}, {Val: v2}}}
	if e, ok := ack.Entry(v2); !ok || e.Val != v2 {
		t.Error("Entry lookup failed")
	}
	if _, ok := ack.Entry(types.InitialValue()); ok {
		t.Error("Entry found a value not present")
	}
	vs := ack.Values()
	if len(vs) != 2 || !vs[0].Less(vs[1]) {
		t.Errorf("Values not in tag order: %v", vs)
	}
}

func TestEnvelopeString(t *testing.T) {
	e := Envelope{From: types.Reader(1), To: types.Server(2), OpID: 7, Round: 2, Payload: Query{}}
	s := e.String()
	for _, frag := range []string{"r1", "s2", "op7.2", "QUERY"} {
		if !strings.Contains(s, frag) {
			t.Errorf("envelope string %q missing %q", s, frag)
		}
	}
	e.IsReply = true
	if !strings.Contains(e.String(), "⇠") {
		t.Error("reply direction marker missing")
	}
}
