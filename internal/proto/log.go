package proto

import (
	"strings"

	"fastreg/internal/types"
)

// LogEvent is one receipt record in a full-info server's append-only log
// (Section 4.1): which client sent what. A read marker is a LogEvent whose
// value is the zero Value — the trace a reader's first round-trip leaves.
type LogEvent struct {
	Client types.ProcID
	Val    types.Value
}

// IsReadMark reports whether the event is a reader's round-trip marker
// rather than a written value.
func (e LogEvent) IsReadMark() bool { return e.Val == (types.Value{}) }

// String renders "w1:(1,w1):\"x\"" or "r2:mark".
func (e LogEvent) String() string {
	if e.IsReadMark() {
		return e.Client.String() + ":mark"
	}
	return e.Client.String() + ":" + e.Val.String()
}

// LogAck is a full-info server's reply: its entire append-only log. The
// full-info model gives clients everything the server knows; concrete
// implementations are optimizations of this (Section 4.1).
type LogAck struct {
	Events []LogEvent
}

// Kind implements Message.
func (LogAck) Kind() Kind { return KindLogAck }

// String implements fmt.Stringer.
func (m LogAck) String() string {
	parts := make([]string, len(m.Events))
	for i, e := range m.Events {
		parts[i] = e.String()
	}
	return "LOGACK{" + strings.Join(parts, " ") + "}"
}

// WrittenValues returns the distinct written values in log order (read
// marks excluded).
func (m LogAck) WrittenValues() []types.Value {
	var out []types.Value
	seen := make(map[types.Value]bool)
	for _, e := range m.Events {
		if e.IsReadMark() || seen[e.Val] {
			continue
		}
		seen[e.Val] = true
		out = append(out, e.Val)
	}
	return out
}
