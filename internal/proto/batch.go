package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Batch frame: many envelopes sharing one frame header.
//
// The stream transports frame each envelope individually; under concurrent
// load a quorum client has several rounds in flight to the same server at
// once, and a replica answers a drained batch with several replies to the
// same client. The batch frame lets all of them share one length prefix,
// one syscall-bound write and one decode buffer:
//
//	u32 body-length | 0xFF | u32 count | count × envelope-frame
//
// where each envelope-frame is exactly the output of Encode (its own u32
// length + body). The marker byte 0xFF occupies the position of a single
// frame's leading process role, which is always a valid types.Role
// (1..3) — so single and batch frames are unambiguous from the first body
// byte, and a decoder that predates batches rejects them instead of
// misparsing. A batch must hold at least one envelope; its count is
// bounded by MaxBatchEnvelopes and its body by MaxBatchFrame.
const (
	batchMarker = 0xFF

	// batchHeader is the marker byte plus the envelope count.
	batchHeader = 1 + 4

	// MaxBatchEnvelopes bounds the envelope count a single batch frame may
	// declare; larger counts are rejected before any allocation.
	MaxBatchEnvelopes = 4096

	// MaxBatchFrame bounds a batch frame's body, like MaxFrame bounds a
	// single envelope's.
	MaxBatchFrame = 8 << 20
)

// ErrEmptyBatch rejects batch frames declaring zero envelopes: an empty
// batch carries nothing and would give the format two encodings of
// "nothing on the wire".
var ErrEmptyBatch = errors.New("proto: empty batch frame")

// bufPool recycles codec scratch buffers (frame assembly on the write
// side, frame reads on the read side). Decode copies every byte it keeps
// (strings and slices are materialized fresh), so returning a buffer after
// the decode pass is safe.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// GetBuf borrows a zero-length scratch buffer from the codec pool.
func GetBuf() []byte { return (*bufPool.Get().(*[]byte))[:0] }

// PutBuf returns a buffer obtained from GetBuf (or grown from one) to the
// pool. The caller must not use it afterwards.
func PutBuf(b []byte) {
	if cap(b) > MaxBatchFrame+4 {
		return // don't let one oversized frame pin memory in the pool
	}
	bufPool.Put(&b)
}

// envsPool recycles envelope slabs — the []Envelope a decoded frame lands
// in and the queues batched senders accumulate into. Decode materializes
// every byte it keeps (keys, values and vectors are fresh allocations
// owned by the envelope, never views into the read buffer), so a recycled
// slab can only ever reuse the backing ARRAY of envelope structs; it can
// never alias a previous frame's key or value bytes. PutEnvs still clears
// the slab so a pooled array doesn't pin dead payloads for the GC.
var envsPool = sync.Pool{New: func() any { return new([]Envelope) }}

// maxPooledEnvs bounds the slab size the pool retains: a rare giant batch
// must not pin its memory forever.
const maxPooledEnvs = 2 * MaxBatchEnvelopes

// GetEnvs borrows a zero-length envelope slab from the codec pool.
func GetEnvs() []Envelope { return (*envsPool.Get().(*[]Envelope))[:0] }

// PutEnvs returns a slab obtained from GetEnvs (or grown from one, or any
// other []Envelope whose contents are dead) to the pool. The caller must
// not use the slice afterwards; every element is cleared before pooling.
func PutEnvs(envs []Envelope) {
	if cap(envs) > maxPooledEnvs {
		return
	}
	clear(envs[:cap(envs)])
	envsPool.Put(&envs)
}

// AppendBatch appends one batch frame holding envs to dst and returns the
// extended slice. At least one envelope is required; the assembled body
// must fit MaxBatchFrame.
func AppendBatch(dst []byte, envs []Envelope) ([]byte, error) {
	if len(envs) == 0 {
		return nil, ErrEmptyBatch
	}
	if len(envs) > MaxBatchEnvelopes {
		return nil, ErrOversize
	}
	start := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0) // length placeholder
	dst = append(dst, batchMarker)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(envs)))
	var err error
	for _, e := range envs {
		if dst, err = AppendEnvelope(dst, e); err != nil {
			return nil, err
		}
	}
	body := len(dst) - start - 4
	if body > MaxBatchFrame {
		return nil, ErrOversize
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(body))
	return dst, nil
}

// EncodeBatch serializes envs into one self-delimiting batch frame.
func EncodeBatch(envs []Envelope) ([]byte, error) { return AppendBatch(nil, envs) }

// DecodeBatch parses one batch frame produced by EncodeBatch, returning
// the envelopes and the number of bytes consumed. Frames that are not
// batches (including valid single-envelope frames) are rejected with
// ErrBadKind.
func DecodeBatch(buf []byte) ([]Envelope, int, error) {
	// Preallocate from the bytes actually present, not the declared count:
	// the smallest envelope frame is well over 8 bytes, so a frame lying
	// about its count can't amplify a few bytes into a huge allocation.
	prealloc := len(buf) / 8
	if prealloc > MaxBatchEnvelopes {
		prealloc = MaxBatchEnvelopes
	}
	return DecodeBatchInto(make([]Envelope, 0, prealloc), buf)
}

// DecodeBatchInto is DecodeBatch decoding into a caller-supplied slab:
// the frame's envelopes are appended to dst (typically a pooled GetEnvs
// slab) and the extended slice is returned with the bytes consumed. On
// error dst's length is unchanged. Every envelope owns its bytes — the
// decode copies keys and values out of buf — so recycling the slab later
// can never alias this frame's data.
func DecodeBatchInto(dst []Envelope, buf []byte) ([]Envelope, int, error) {
	if len(buf) < 4 {
		return dst, 0, ErrTruncated
	}
	body := binary.BigEndian.Uint32(buf[:4])
	if body > MaxBatchFrame {
		return dst, 0, ErrOversize
	}
	total := 4 + int(body)
	if len(buf) < total {
		return dst, 0, ErrTruncated
	}
	b := buf[4:total]
	if len(b) < batchHeader {
		return dst, 0, ErrTruncated
	}
	if b[0] != batchMarker {
		return dst, 0, fmt.Errorf("%w: not a batch frame", ErrBadKind)
	}
	count := binary.BigEndian.Uint32(b[1:batchHeader])
	if count == 0 {
		return dst, 0, ErrEmptyBatch
	}
	if count > MaxBatchEnvelopes {
		return dst, 0, ErrOversize
	}
	start := len(dst)
	off := batchHeader
	for i := uint32(0); i < count; i++ {
		e, n, err := Decode(b[off:])
		if err != nil {
			return dst[:start], 0, err
		}
		dst = append(dst, e)
		off += n
	}
	if off != len(b) {
		return dst[:start], 0, fmt.Errorf("proto: %d trailing bytes in batch frame", len(b)-off)
	}
	return dst, total, nil
}

// AppendDecode decodes one frame — single envelope or batch — from buf,
// appending its envelopes to dst and returning the extended slice plus
// the bytes consumed. It is the zero-alloc companion of Decode/DecodeBatch
// for callers holding a pooled slab. On error dst's length is unchanged.
func AppendDecode(dst []Envelope, buf []byte) ([]Envelope, int, error) {
	if len(buf) >= 4+batchHeader && buf[4] == batchMarker {
		return DecodeBatchInto(dst, buf)
	}
	e, n, err := Decode(buf)
	if err != nil {
		return dst, 0, err
	}
	return append(dst, e), n, nil
}

// WriteBatch encodes envs as one batch frame and writes it to w, reusing a
// pooled assembly buffer.
func WriteBatch(w io.Writer, envs []Envelope) error {
	buf, err := AppendBatch(GetBuf(), envs)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	PutBuf(buf)
	return err
}

// ReadFrames reads exactly one frame — single envelope or batch — from r
// and returns its envelopes (len ≥ 1 on success). The read buffer comes
// from the codec pool and is returned before ReadFrames does; the
// returned envelope slice is freshly allocated. Receive loops that drain
// frames continuously should prefer ReadFramesInto with a pooled slab.
func ReadFrames(r io.Reader) ([]Envelope, error) {
	return ReadFramesInto(r, nil)
}

// ReadFramesInto is ReadFrames decoding into a caller-supplied slab: the
// frame's envelopes are appended to dst (typically a pooled GetEnvs slab)
// and the extended slice is returned. Both the read buffer and — with a
// pooled dst — the envelope storage are recycled, so a steady stream
// allocates only what the envelopes themselves own (keys, values). On
// error dst's length is unchanged.
func ReadFramesInto(r io.Reader, dst []Envelope) ([]Envelope, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return dst, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > MaxBatchFrame {
		return dst, ErrOversize
	}
	buf := GetBuf()
	defer func() { PutBuf(buf) }() // buf may be regrown below
	if need := 4 + int(body); cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		return dst, err
	}
	if body >= batchHeader && buf[4] == batchMarker {
		out, _, err := DecodeBatchInto(dst, buf)
		return out, err
	}
	e, _, err := Decode(buf) // enforces the single-frame MaxFrame bound
	if err != nil {
		return dst, err
	}
	return append(dst, e), nil
}
