// Package proto defines the messages exchanged between clients and servers
// in every protocol of the design space, plus a compact binary codec so the
// same messages can travel over real byte streams.
//
// The algorithm schema of Section 2.2 has exactly two interaction shapes per
// round-trip: a query (collect information from servers) and an update (send
// information to servers, receive an ACK or data). The message set below
// covers both shapes for all four protocol families:
//
//   - Query/QueryAck      — phase-1 of ABD / LS97 writes and reads;
//   - Update/UpdateAck    — phase-2 writes and read write-backs;
//   - FastRead/FastReadAck — the one-round read of the W2R1 and W1R1
//     algorithms (Algorithm 1), carrying the reader's valQueue out and the
//     server's valuevector (values with their updated sets) back.
package proto

import (
	"fmt"
	"sort"
	"strings"

	"fastreg/internal/types"
)

// Kind discriminates message payload types on the wire.
type Kind uint8

// Message kinds. Zero is invalid so a missing payload is detectable.
const (
	KindInvalid Kind = iota
	KindQuery
	KindQueryAck
	KindUpdate
	KindUpdateAck
	KindFastRead
	KindFastReadAck
	KindLogAck
)

// String names the kind like the paper's message names.
func (k Kind) String() string {
	switch k {
	case KindQuery:
		return "QUERY"
	case KindQueryAck:
		return "READACK"
	case KindUpdate:
		return "WRITE"
	case KindUpdateAck:
		return "WRITEACK"
	case KindFastRead:
		return "READ"
	case KindFastReadAck:
		return "READACK*"
	case KindLogAck:
		return "LOGACK"
	default:
		return "INVALID"
	}
}

// Message is implemented by every payload type.
type Message interface {
	Kind() Kind
	fmt.Stringer
}

// Query asks a server for its current value (phase 1 of a two-round write or
// read).
type Query struct{}

// Kind implements Message.
func (Query) Kind() Kind { return KindQuery }

// String implements fmt.Stringer.
func (Query) String() string { return "QUERY" }

// QueryAck returns the server's current (maximal) value.
type QueryAck struct {
	Val types.Value
}

// Kind implements Message.
func (QueryAck) Kind() Kind { return KindQueryAck }

// String implements fmt.Stringer.
func (m QueryAck) String() string { return "READACK{" + m.Val.String() + "}" }

// Update stores a value on a server (phase 2 of a write, or a read
// write-back).
type Update struct {
	Val types.Value
}

// Kind implements Message.
func (Update) Kind() Kind { return KindUpdate }

// String implements fmt.Stringer.
func (m Update) String() string { return "WRITE{" + m.Val.String() + "}" }

// UpdateAck acknowledges an Update.
type UpdateAck struct{}

// Kind implements Message.
func (UpdateAck) Kind() Kind { return KindUpdateAck }

// String implements fmt.Stringer.
func (UpdateAck) String() string { return "WRITEACK" }

// FastRead is the single-round read request of Algorithm 1 (line 19):
// "send(read, valQueue) to all servers". The queue carries every value the
// reader has previously seen, so the single round both disseminates values
// (the server updates its valuevector) and queries.
type FastRead struct {
	ValQueue []types.Value
}

// Kind implements Message.
func (FastRead) Kind() Kind { return KindFastRead }

// String implements fmt.Stringer.
func (m FastRead) String() string {
	parts := make([]string, len(m.ValQueue))
	for i, v := range m.ValQueue {
		parts[i] = v.String()
	}
	return "READ{queue=[" + strings.Join(parts, " ") + "]}"
}

// VectorEntry is one row of a server's valuevector: a value plus the set of
// clients known to have updated (proposed or relayed) it.
type VectorEntry struct {
	Val     types.Value
	Updated []types.ProcID // sorted, deduplicated
}

// Clone deep-copies the entry so server state cannot be aliased by clients.
func (e VectorEntry) Clone() VectorEntry {
	up := make([]types.ProcID, len(e.Updated))
	copy(up, e.Updated)
	return VectorEntry{Val: e.Val, Updated: up}
}

// HasUpdated reports whether client p is in the entry's updated set.
func (e VectorEntry) HasUpdated(p types.ProcID) bool {
	for _, q := range e.Updated {
		if q == p {
			return true
		}
	}
	return false
}

// String implements fmt.Stringer.
func (e VectorEntry) String() string {
	ids := make([]string, len(e.Updated))
	for i, p := range e.Updated {
		ids[i] = p.String()
	}
	return e.Val.String() + "⇐{" + strings.Join(ids, ",") + "}"
}

// NormalizeUpdated sorts and deduplicates the updated set in place and
// returns it. Entries travel on the wire, so a canonical form keeps
// executions deterministic and comparisons cheap.
func NormalizeUpdated(ps []types.ProcID) []types.ProcID {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Less(ps[j]) })
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || ps[i-1] != p {
			out = append(out, p)
		}
	}
	return out
}

// FastReadAck is the server's reply to FastRead: its full valuevector
// (Algorithm 2 replies with everything needed for the admissibility test).
type FastReadAck struct {
	Vector []VectorEntry
}

// Kind implements Message.
func (FastReadAck) Kind() Kind { return KindFastReadAck }

// String implements fmt.Stringer.
func (m FastReadAck) String() string {
	parts := make([]string, len(m.Vector))
	for i, e := range m.Vector {
		parts[i] = e.String()
	}
	return "READACK*{" + strings.Join(parts, " ") + "}"
}

// Entry returns the vector entry for value v and whether it exists.
func (m FastReadAck) Entry(v types.Value) (VectorEntry, bool) {
	for _, e := range m.Vector {
		if e.Val == v {
			return e, true
		}
	}
	return VectorEntry{}, false
}

// Values returns the set of values present in the ack's vector, in tag order.
func (m FastReadAck) Values() []types.Value {
	vs := make([]types.Value, 0, len(m.Vector))
	for _, e := range m.Vector {
		vs = append(vs, e.Val)
	}
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
	return vs
}
