package proto

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"fastreg/internal/types"
)

func sampleEnvelopes() []Envelope {
	v1 := types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(1)}, Data: "alpha"}
	v2 := types.Value{Tag: types.Tag{TS: 2, WID: types.Writer(2)}, Data: "beta"}
	return []Envelope{
		{From: types.Writer(1), To: types.Server(1), OpID: 1, Round: 1, Payload: Query{}},
		{From: types.Server(1), To: types.Writer(1), OpID: 1, Round: 1, IsReply: true, Payload: QueryAck{Val: v1}},
		{From: types.Writer(1), To: types.Server(3), OpID: 1, Round: 2, Payload: Update{Val: v2}},
		{From: types.Server(3), To: types.Writer(1), OpID: 1, Round: 2, IsReply: true, Payload: UpdateAck{}},
		{From: types.Reader(2), To: types.Server(2), OpID: 9, Round: 1, Payload: FastRead{ValQueue: []types.Value{v1, v2, types.InitialValue()}}},
		{From: types.Server(2), To: types.Reader(2), OpID: 9, Round: 1, IsReply: true, Payload: FastReadAck{Vector: []VectorEntry{
			{Val: v1, Updated: []types.ProcID{types.Writer(1), types.Reader(2)}},
			{Val: v2, Updated: nil},
		}}},
		{From: types.Reader(1), To: types.Server(1), OpID: 0, Round: 1, Payload: FastRead{}},
		{From: types.Server(1), To: types.Reader(1), OpID: 0, Round: 1, IsReply: true, Payload: FastReadAck{}},
		{From: types.Writer(2), To: types.Server(4), Key: "users:alice", OpID: 7, Round: 1, Payload: Query{}},
		{From: types.Server(4), To: types.Writer(2), Key: "users:alice", OpID: 7, Round: 2, IsReply: true, Payload: UpdateAck{}},
	}
}

// envEqual compares envelopes treating nil and empty slices as equal, since
// the wire format cannot distinguish them.
func envEqual(a, b Envelope) bool {
	norm := func(e *Envelope) {
		switch m := e.Payload.(type) {
		case FastRead:
			if len(m.ValQueue) == 0 {
				m.ValQueue = nil
				e.Payload = m
			}
		case FastReadAck:
			if len(m.Vector) == 0 {
				m.Vector = nil
				e.Payload = m
			} else {
				for i := range m.Vector {
					if len(m.Vector[i].Updated) == 0 {
						m.Vector[i].Updated = nil
					}
				}
				e.Payload = m
			}
		}
	}
	norm(&a)
	norm(&b)
	return reflect.DeepEqual(a, b)
}

func TestCodecRoundTrip(t *testing.T) {
	for i, e := range sampleEnvelopes() {
		b, err := Encode(e)
		if err != nil {
			t.Fatalf("case %d: Encode: %v", i, err)
		}
		got, n, err := Decode(b)
		if err != nil {
			t.Fatalf("case %d: Decode: %v", i, err)
		}
		if n != len(b) {
			t.Fatalf("case %d: consumed %d of %d bytes", i, n, len(b))
		}
		if !envEqual(got, e) {
			t.Fatalf("case %d: round trip mismatch\n got %+v\nwant %+v", i, got, e)
		}
	}
}

func TestCodecStream(t *testing.T) {
	var buf bytes.Buffer
	envs := sampleEnvelopes()
	for _, e := range envs {
		if err := WriteFrame(&buf, e); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	for i := range envs {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !envEqual(got, envs[i]) {
			t.Fatalf("frame %d mismatch: got %+v want %+v", i, got, envs[i])
		}
	}
	if buf.Len() != 0 {
		t.Fatalf("%d trailing bytes after reading all frames", buf.Len())
	}
}

func TestDecodeTruncated(t *testing.T) {
	b, err := Encode(sampleEnvelopes()[5])
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(b); n++ {
		if _, _, err := Decode(b[:n]); err == nil {
			t.Fatalf("Decode of %d/%d bytes succeeded", n, len(b))
		}
	}
}

func TestDecodeCorruptKind(t *testing.T) {
	b, err := Encode(Envelope{From: types.Writer(1), To: types.Server(1), Payload: Query{}})
	if err != nil {
		t.Fatal(err)
	}
	// Kind byte is the last byte of a Query frame.
	b[len(b)-1] = 0xFF
	if _, _, err := Decode(b); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestEncodeNilPayload(t *testing.T) {
	if _, err := Encode(Envelope{}); !errors.Is(err, ErrBadKind) {
		t.Fatalf("err = %v, want ErrBadKind", err)
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	b, err := Encode(Envelope{From: types.Writer(1), To: types.Server(1), Payload: UpdateAck{}})
	if err != nil {
		t.Fatal(err)
	}
	// Grow the body by one byte and fix the length header.
	b = append(b, 0x00)
	b[3]++
	if _, _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted a frame with trailing bytes")
	}
}

func randValue(r *rand.Rand) types.Value {
	data := make([]byte, r.Intn(12))
	for i := range data {
		data[i] = byte('a' + r.Intn(26))
	}
	return types.Value{
		Tag:  types.Tag{TS: int64(r.Intn(1000)), WID: types.Writer(1 + r.Intn(5))},
		Data: string(data),
	}
}

func randEnvelope(r *rand.Rand) Envelope {
	keys := []string{"", "k", "users:alice", "config/flags"}
	e := Envelope{
		From:    types.Reader(1 + r.Intn(5)),
		To:      types.Server(1 + r.Intn(5)),
		Key:     keys[r.Intn(len(keys))],
		OpID:    r.Uint64(),
		Round:   uint8(1 + r.Intn(2)),
		IsReply: r.Intn(2) == 0,
	}
	switch r.Intn(6) {
	case 0:
		e.Payload = Query{}
	case 1:
		e.Payload = QueryAck{Val: randValue(r)}
	case 2:
		e.Payload = Update{Val: randValue(r)}
	case 3:
		e.Payload = UpdateAck{}
	case 4:
		m := FastRead{}
		for i := 0; i < r.Intn(5); i++ {
			m.ValQueue = append(m.ValQueue, randValue(r))
		}
		e.Payload = m
	default:
		m := FastReadAck{}
		for i := 0; i < r.Intn(4); i++ {
			ent := VectorEntry{Val: randValue(r)}
			for j := 0; j < r.Intn(4); j++ {
				ent.Updated = append(ent.Updated, types.Reader(1+r.Intn(4)))
			}
			m.Vector = append(m.Vector, ent)
		}
		e.Payload = m
	}
	return e
}

// Property: Encode∘Decode is the identity on random envelopes.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := randEnvelope(r)
		b, err := Encode(e)
		if err != nil {
			return false
		}
		got, n, err := Decode(b)
		return err == nil && n == len(b) && envEqual(got, e)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding random bytes never panics (errors are fine).
func TestDecodeFuzzNoPanic(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		b := make([]byte, r.Intn(64))
		r.Read(b)
		Decode(b) // must not panic
	}
}
