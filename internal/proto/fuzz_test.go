package proto

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"fastreg/internal/types"
)

// fuzzSeeds are valid frames covering every message kind, so the fuzzer
// starts from the interesting corners of the format instead of random
// garbage.
func fuzzSeeds(tb testing.TB) [][]byte {
	tb.Helper()
	val := types.Value{Tag: types.Tag{TS: 42, WID: types.Writer(2)}, Data: "payload"}
	envs := []Envelope{
		{From: types.Reader(1), To: types.Server(3), Key: "k", OpID: 7, Round: 1, Payload: Query{}},
		{From: types.Server(3), To: types.Reader(1), Key: "k", OpID: 7, Round: 1, IsReply: true, Payload: QueryAck{Val: val}},
		{From: types.Writer(1), To: types.Server(1), OpID: 9, Round: 2, Payload: Update{Val: val}},
		{From: types.Server(1), To: types.Writer(1), OpID: 9, Round: 2, IsReply: true, Payload: UpdateAck{}},
		{From: types.Reader(2), To: types.Server(2), Key: "multi/key", OpID: 1, Round: 1, Payload: FastRead{ValQueue: []types.Value{val, types.InitialValue()}}},
		{From: types.Server(2), To: types.Reader(2), Key: "multi/key", OpID: 1, Round: 1, IsReply: true, Payload: FastReadAck{Vector: []VectorEntry{
			{Val: val, Updated: []types.ProcID{types.Reader(1), types.Writer(2)}},
			{Val: types.InitialValue()},
		}}},
		{From: types.Server(1), To: types.Reader(1), OpID: 3, Round: 1, IsReply: true, Payload: LogAck{Events: []LogEvent{
			{Client: types.Writer(1), Val: val},
		}}},
		// Epoch/weight-stamped frames (continuous audit cutover).
		{From: types.Writer(2), To: types.Server(1), Key: "k", OpID: 11, Round: 1, Epoch: 4, Weight: 1 << 30, Payload: Update{Val: val}},
		{From: types.Server(1), To: types.Writer(2), Key: "k", OpID: 11, Round: 1, IsReply: true, Epoch: 4, Weight: 1 << 30, Payload: UpdateAck{}},
	}
	seeds := make([][]byte, 0, len(envs)+2)
	for _, e := range envs {
		b, err := Encode(e)
		if err != nil {
			tb.Fatalf("seed encode %v: %v", e, err)
		}
		seeds = append(seeds, b)
	}
	// Batch frames: the whole set in one frame, and a minimal two-envelope
	// batch, so the fuzzer mutates the batch header and inner boundaries.
	for _, set := range [][]Envelope{envs, envs[:2]} {
		b, err := EncodeBatch(set)
		if err != nil {
			tb.Fatalf("seed batch encode: %v", err)
		}
		seeds = append(seeds, b)
	}
	// Trace record frames: every record kind of the capture format.
	for _, rec := range traceSeeds() {
		b, err := EncodeTraceRecord(rec)
		if err != nil {
			tb.Fatalf("seed trace encode: %v", err)
		}
		seeds = append(seeds, b)
	}
	return seeds
}

// FuzzCodecRoundTrip locks the wire format before it goes on a real
// network: Decode must never panic or over-allocate on arbitrary bytes,
// must reject truncated and oversized frames, and everything it does
// accept must survive a re-encode/re-decode round trip unchanged
// (canonicality: the codec has exactly one byte representation per
// envelope).
func FuzzCodecRoundTrip(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		// Truncations of valid frames probe every length-check branch.
		f.Add(seed[:len(seed)-1])
		f.Add(seed[:4])
	}
	// A declared body length beyond MaxFrame must be rejected up front.
	huge := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	f.Add(append(huge, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzBatch(t, data)
		fuzzTrace(t, data)
		fuzzAppendDecode(t, data)
		env, n, err := Decode(data)
		if err != nil {
			// Rejected input: fine, as long as the error is sane.
			if n != 0 {
				t.Fatalf("Decode returned error %v but consumed %d bytes", err, n)
			}
			return
		}
		if n < 4 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		if n > 4+MaxFrame {
			t.Fatalf("Decode accepted a frame of %d bytes, over MaxFrame", n)
		}
		// Round trip: re-encoding the decoded envelope must reproduce the
		// consumed bytes exactly, and decode back to an equal envelope.
		out, err := Encode(env)
		if err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v (env %v)", err, env)
		}
		if !bytes.Equal(out, data[:n]) {
			t.Fatalf("non-canonical frame:\n in:  %x\n out: %x", data[:n], out)
		}
		env2, n2, err := Decode(out)
		if err != nil || n2 != n || !reflect.DeepEqual(env, env2) {
			t.Fatalf("re-decode mismatch: %v / %v (err %v)", env, env2, err)
		}
	})
}

// fuzzBatch holds the batch decoder to the same contract as the single
// decoder: no panics or over-allocation on arbitrary bytes, truncated /
// empty / oversize-count batches rejected with zero bytes consumed, and
// every accepted batch canonical under re-encode/re-decode.
func fuzzBatch(t *testing.T, data []byte) {
	t.Helper()
	envs, n, err := DecodeBatch(data)
	if err != nil {
		if n != 0 {
			t.Fatalf("DecodeBatch returned error %v but consumed %d bytes", err, n)
		}
		return
	}
	if len(envs) == 0 || len(envs) > MaxBatchEnvelopes {
		t.Fatalf("DecodeBatch accepted %d envelopes", len(envs))
	}
	if n < 4 || n > len(data) || n > 4+MaxBatchFrame {
		t.Fatalf("DecodeBatch consumed %d of %d bytes", n, len(data))
	}
	out, err := EncodeBatch(envs)
	if err != nil {
		t.Fatalf("re-encode of decoded batch failed: %v", err)
	}
	if !bytes.Equal(out, data[:n]) {
		t.Fatalf("non-canonical batch frame:\n in:  %x\n out: %x", data[:n], out)
	}
	envs2, n2, err := DecodeBatch(out)
	if err != nil || n2 != n || !reflect.DeepEqual(envs, envs2) {
		t.Fatalf("batch re-decode mismatch: %v / %v (err %v)", envs, envs2, err)
	}
}

// fuzzAppendDecode holds the pooled-slab decode entry to the contract
// the receive loops rely on: AppendDecode must agree exactly with the
// dedicated decoders (same envelopes, same consumed count, accept/reject
// parity) and must leave the destination prefix untouched either way —
// on arbitrary bytes, including frames that dispatch to the batch path
// and then fail mid-envelope.
func fuzzAppendDecode(t *testing.T, data []byte) {
	t.Helper()
	sentinel := Envelope{From: types.Writer(1), Key: "sentinel", OpID: 99}
	dst := append(GetEnvs(), sentinel)
	out, n, err := AppendDecode(dst, data)
	var wantEnvs []Envelope
	var wantN int
	var wantErr error
	if len(data) >= 4+batchHeader && data[4] == batchMarker {
		wantEnvs, wantN, wantErr = DecodeBatch(data)
	} else {
		e, n1, err1 := Decode(data)
		if err1 == nil {
			wantEnvs, wantN = []Envelope{e}, n1
		}
		wantErr = err1
	}
	if (err == nil) != (wantErr == nil) {
		t.Fatalf("AppendDecode err=%v, dedicated decoder err=%v", err, wantErr)
	}
	if err != nil {
		if n != 0 || len(out) != 1 || !reflect.DeepEqual(out[0], sentinel) {
			t.Fatalf("AppendDecode error left dst dirty: n=%d len=%d", n, len(out))
		}
		PutEnvs(out)
		return
	}
	if n != wantN || !reflect.DeepEqual(out[0], sentinel) || !reflect.DeepEqual(out[1:], wantEnvs) {
		t.Fatalf("AppendDecode mismatch: n=%d want %d, got %v want %v", n, wantN, out[1:], wantEnvs)
	}
	PutEnvs(out)
}

// fuzzTrace holds the trace-record decoder (the capture format of
// internal/audit) to the same contract: no panics or over-allocation on
// arbitrary bytes, truncated/oversize frames rejected with zero bytes
// consumed, and every accepted record canonical under re-encode/re-decode.
func fuzzTrace(t *testing.T, data []byte) {
	t.Helper()
	rec, n, err := DecodeTraceRecord(data)
	if err != nil {
		if n != 0 {
			t.Fatalf("DecodeTraceRecord returned error %v but consumed %d bytes", err, n)
		}
		return
	}
	if n < 4 || n > len(data) || n > 4+MaxFrame {
		t.Fatalf("DecodeTraceRecord consumed %d of %d bytes", n, len(data))
	}
	out, err := EncodeTraceRecord(rec)
	if err != nil {
		t.Fatalf("re-encode of decoded trace record failed: %v (%+v)", err, rec)
	}
	if !bytes.Equal(out, data[:n]) {
		t.Fatalf("non-canonical trace frame:\n in:  %x\n out: %x", data[:n], out)
	}
	rec2, n2, err := DecodeTraceRecord(out)
	if err != nil || n2 != n || !reflect.DeepEqual(rec, rec2) {
		t.Fatalf("trace re-decode mismatch: %+v / %+v (err %v)", rec, rec2, err)
	}
}

// TestDecodeTruncatedAll exhaustively truncates every seed frame at every
// byte boundary: the decoder must reject each prefix without panicking
// (deterministic companion to the fuzzer, always run in CI).
func TestDecodeTruncatedAll(t *testing.T) {
	for _, seed := range fuzzSeeds(t) {
		for cut := 0; cut < len(seed); cut++ {
			if _, n, err := Decode(seed[:cut]); err == nil || n != 0 {
				t.Fatalf("truncated frame (%d of %d bytes) accepted", cut, len(seed))
			}
		}
	}
}

// TestDecodeOversizeRejected checks both oversize paths: a declared
// length over MaxFrame, and an inner string length over MaxFrame inside a
// plausible body.
func TestDecodeOversizeRejected(t *testing.T) {
	hdr := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	if _, _, err := Decode(append(hdr, make([]byte, 16)...)); err == nil {
		t.Fatal("oversize declared length accepted")
	}
	if _, err := Encode(Envelope{Payload: Update{Val: types.Value{Data: string(make([]byte, MaxFrame))}}}); err == nil {
		t.Fatal("oversize envelope encoded")
	}
}
