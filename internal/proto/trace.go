package proto

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fastreg/internal/types"
)

// Trace record frame: the capture format of the audit subsystem
// (internal/audit). A running replica or client appends one record per
// observed event to its own trace log (a ".trlog" file); cmd/regaudit
// merges the per-process logs offline into one multi-client history and
// re-checks atomicity — the capture/replay answer to "regclient can only
// verify its own operations".
//
// Records are self-delimiting frames in the envelope codec's style:
//
//	u32 body-length | 0xFE | u8 kind | kind-specific fields
//
// The marker byte 0xFE occupies the position of a single envelope frame's
// leading process role (always a valid types.Role, 1..3) and differs from
// the batch marker 0xFF, so the three frame families are unambiguous from
// the first body byte and a trace log accidentally fed to an envelope
// decoder (or vice versa) is rejected instead of misparsed.
//
// Four record kinds exist:
//
//   - TraceHeader opens every file: who wrote it (a replica's ProcID or a
//     client process label), the cluster shape and the protocol, so the
//     merge can cross-check that all logs describe one deployment;
//   - TraceClientOp is one completed (or failed) client operation with
//     its interval in the RECORDING PROCESS's clock domain — timestamps
//     from different files are never comparable, which is exactly the
//     guarantee the offline checker's clock-domain model relies on;
//   - TraceServerHandle is one request handled by a replica, with the
//     value it carried (a write's round-2 payload) and the value the
//     reply served — the evidence the merge uses to reconstruct writes
//     whose client crashed before logging them, and to audit what each
//     replica actually served;
//   - TraceEpoch is an epoch-boundary stamp: the continuous-audit
//     coordinator (internal/epoch) appends one to every capture log when
//     all weight thrown with an epoch's in-flight ops has returned —
//     Huang's termination condition — marking "every operation of epoch N
//     this log will ever record is already above this line".
//
// Like the envelope codec the format is canonical — every accepted frame
// re-encodes to the same bytes — and fuzz-locked by FuzzCodecRoundTrip.

// TraceKind discriminates trace record types. Zero is invalid so a
// missing kind is detectable.
type TraceKind uint8

// Trace record kinds.
const (
	TraceInvalid TraceKind = iota
	TraceHeader
	TraceClientOp
	TraceServerHandle
	TraceEpoch
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceHeader:
		return "HEADER"
	case TraceClientOp:
		return "CLIENTOP"
	case TraceServerHandle:
		return "HANDLE"
	case TraceEpoch:
		return "EPOCH"
	default:
		return "INVALID"
	}
}

// traceMarker distinguishes trace record frames from single-envelope
// frames (role byte 1..3) and batch frames (0xFF).
const traceMarker = 0xFE

// ErrNotTrace rejects frames that are not trace records.
var ErrNotTrace = errors.New("proto: not a trace record frame")

// TraceRecord is one record of a capture log. Kind selects which fields
// are meaningful (and encoded):
//
//   - TraceHeader: Origin, Protocol, S, T, R, W;
//   - TraceClientOp: Key, Client, OpID, Op, Val, Invoke, Response,
//     Failed, Err, Epoch;
//   - TraceServerHandle: Key, Client, OpID, Server, Round, Payload, Val,
//     ReplyVal, Epoch, Seq;
//   - TraceEpoch: Epoch (the epoch that just closed).
type TraceRecord struct {
	Kind TraceKind

	// Header fields: the recording process and the deployment it belongs
	// to. Origin is "s3" for replica logs and a free-form process label
	// ("client-8812-1") for client logs; replica logs additionally carry
	// the replica's identity in Server (zero for client logs), which is
	// how the merge tells the two apart.
	Origin   string
	Protocol string
	S, T     int
	R, W     int

	// Shared addressing: the key and the operation's owner.
	Key    string
	Client types.ProcID
	OpID   uint64

	// Client-op fields: the operation as the client observed it. Invoke
	// and Response are vclock times in the recording process's per-key
	// clock domain; Failed marks operations that ended in an error (Err),
	// whose effect at the servers is indeterminate.
	Op       types.OpKind
	Val      types.Value
	Invoke   int64
	Response int64
	Failed   bool
	Err      string

	// Server-handle fields: one handled request at replica Server. Val is
	// the value the REQUEST carried (a write's Update payload; zero for
	// queries), ReplyVal the maximal value the reply served (zero for
	// plain acks).
	Server   types.ProcID
	Round    uint8
	Payload  Kind
	ReplyVal types.Value

	// Epoch tags the record with the continuous-audit epoch it belongs to
	// (zero when no coordinator is attached): the op's borrow phase on
	// client records, the request envelope's stamp on handle records, and
	// the closing epoch on boundary records. Explicit tags — not log
	// position — attribute records to epochs, because an op of epoch N+1
	// can complete and append before epoch N's boundary is stamped.
	Epoch uint64
	// Seq orders handle records of ONE replica across connections: the
	// per-key handled counter read under the shard lock, a total order log
	// position cannot give (capture emission happens outside the lock).
	// Zero means "unordered" (pre-rotation logs); the served-value
	// cross-check skips such records.
	Seq uint64
}

// String renders the record for diagnostics.
func (t TraceRecord) String() string {
	switch t.Kind {
	case TraceHeader:
		return fmt.Sprintf("HEADER{%s %s S=%d t=%d R=%d W=%d}", t.Origin, t.Protocol, t.S, t.T, t.R, t.W)
	case TraceClientOp:
		status := ""
		if t.Failed {
			status = " FAILED(" + t.Err + ")"
		}
		return fmt.Sprintf("OP{%s %s#%d %s %s [%d,%d]%s}", t.Key, t.Client, t.OpID, t.Op, t.Val, t.Invoke, t.Response, status)
	case TraceServerHandle:
		return fmt.Sprintf("HANDLE{%s %s %s#%d.%d %s req=%s reply=%s}", t.Server, t.Key, t.Client, t.OpID, t.Round, t.Payload, t.Val, t.ReplyVal)
	case TraceEpoch:
		return fmt.Sprintf("EPOCH{%d}", t.Epoch)
	default:
		return "INVALID"
	}
}

// EncodeTraceRecord serializes a record to a self-delimiting frame.
func EncodeTraceRecord(t TraceRecord) ([]byte, error) { return AppendTraceRecord(nil, t) }

// AppendTraceRecord appends the record's frame to dst and returns the
// extended slice.
func AppendTraceRecord(dst []byte, t TraceRecord) ([]byte, error) {
	start := len(dst)
	w := writer{buf: dst}
	w.u32(0) // length placeholder
	w.u8(traceMarker)
	w.u8(uint8(t.Kind))
	switch t.Kind {
	case TraceHeader:
		w.str(t.Origin)
		w.str(t.Protocol)
		w.u32(uint32(t.S))
		w.u32(uint32(t.T))
		w.u32(uint32(t.R))
		w.u32(uint32(t.W))
		w.proc(t.Server)
	case TraceClientOp:
		w.str(t.Key)
		w.proc(t.Client)
		w.u64(t.OpID)
		w.u8(uint8(t.Op))
		w.value(t.Val)
		w.i64(t.Invoke)
		w.i64(t.Response)
		if t.Failed {
			w.u8(1)
		} else {
			w.u8(0)
		}
		w.str(t.Err)
		w.u64(t.Epoch)
	case TraceServerHandle:
		w.str(t.Key)
		w.proc(t.Client)
		w.u64(t.OpID)
		w.proc(t.Server)
		w.u8(t.Round)
		w.u8(uint8(t.Payload))
		w.value(t.Val)
		w.value(t.ReplyVal)
		w.u64(t.Epoch)
		w.u64(t.Seq)
	case TraceEpoch:
		w.u64(t.Epoch)
	default:
		return nil, fmt.Errorf("%w: trace kind %d", ErrBadKind, t.Kind)
	}
	body := len(w.buf) - start - 4
	if body > MaxFrame {
		return nil, ErrOversize
	}
	binary.BigEndian.PutUint32(w.buf[start:start+4], uint32(body))
	return w.buf, nil
}

// DecodeTraceRecord parses one frame produced by EncodeTraceRecord,
// returning the record and the number of bytes consumed. Frames that are
// not trace records (envelopes, batches) fail with ErrNotTrace.
func DecodeTraceRecord(buf []byte) (TraceRecord, int, error) {
	if len(buf) < 4 {
		return TraceRecord{}, 0, ErrTruncated
	}
	body := binary.BigEndian.Uint32(buf[:4])
	if body > MaxFrame {
		return TraceRecord{}, 0, ErrOversize
	}
	total := 4 + int(body)
	if len(buf) < total {
		return TraceRecord{}, 0, ErrTruncated
	}
	r := &reader{buf: buf[4:total]}
	if r.u8() != traceMarker {
		return TraceRecord{}, 0, ErrNotTrace
	}
	var t TraceRecord
	t.Kind = TraceKind(r.u8())
	switch t.Kind {
	case TraceHeader:
		t.Origin = r.str()
		t.Protocol = r.str()
		t.S = int(r.u32())
		t.T = int(r.u32())
		t.R = int(r.u32())
		t.W = int(r.u32())
		t.Server = r.proc()
		// Shape fields must survive the int round trip canonically.
		if r.err == nil && (t.S > 1<<30 || t.T > 1<<30 || t.R > 1<<30 || t.W > 1<<30) {
			r.fail(ErrOversize)
		}
	case TraceClientOp:
		t.Key = r.str()
		t.Client = r.proc()
		t.OpID = r.u64()
		t.Op = types.OpKind(r.u8())
		if r.err == nil && (t.Op != types.OpRead && t.Op != types.OpWrite) {
			r.fail(fmt.Errorf("%w: op kind %d", ErrBadKind, t.Op))
		}
		t.Val = r.value()
		t.Invoke = r.i64()
		t.Response = r.i64()
		switch flag := r.u8(); flag {
		case 0:
		case 1:
			t.Failed = true
		default:
			r.fail(errBadFlag)
		}
		t.Err = r.str()
		t.Epoch = r.u64()
	case TraceServerHandle:
		t.Key = r.str()
		t.Client = r.proc()
		t.OpID = r.u64()
		t.Server = r.proc()
		t.Round = r.u8()
		t.Payload = Kind(r.u8())
		if r.err == nil && (t.Payload == KindInvalid || t.Payload > KindLogAck) {
			r.fail(fmt.Errorf("%w: payload kind %d", ErrBadKind, t.Payload))
		}
		t.Val = r.value()
		t.ReplyVal = r.value()
		t.Epoch = r.u64()
		t.Seq = r.u64()
	case TraceEpoch:
		t.Epoch = r.u64()
	default:
		return TraceRecord{}, 0, fmt.Errorf("%w: trace kind %d", ErrBadKind, t.Kind)
	}
	if r.err != nil {
		return TraceRecord{}, 0, r.err
	}
	if r.off != len(r.buf) {
		return TraceRecord{}, 0, fmt.Errorf("proto: %d trailing bytes in trace frame", len(r.buf)-r.off)
	}
	return t, total, nil
}

// WriteTraceRecord encodes t and writes the frame to w, reusing a pooled
// assembly buffer.
func WriteTraceRecord(w io.Writer, t TraceRecord) error {
	buf, err := AppendTraceRecord(GetBuf(), t)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	PutBuf(buf)
	return err
}

// ReadTraceRecord reads exactly one trace record from r. A clean
// end-of-stream returns io.EOF; a stream cut mid-frame (a process killed
// with a partially flushed log — the expected shape of a crashed
// capture) returns io.ErrUnexpectedEOF, so log readers can distinguish
// "complete log" from "truncated log".
func ReadTraceRecord(r io.Reader) (TraceRecord, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// ReadFull already distinguishes the two: io.EOF at a frame
		// boundary, io.ErrUnexpectedEOF inside the length prefix.
		return TraceRecord{}, err
	}
	body := binary.BigEndian.Uint32(hdr[:])
	if body > MaxFrame {
		return TraceRecord{}, ErrOversize
	}
	buf := GetBuf()
	defer func() { PutBuf(buf) }()
	if need := 4 + int(body); cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	copy(buf, hdr[:])
	if _, err := io.ReadFull(r, buf[4:]); err != nil {
		if errors.Is(err, io.EOF) {
			return TraceRecord{}, io.ErrUnexpectedEOF
		}
		return TraceRecord{}, err
	}
	t, _, err := DecodeTraceRecord(buf)
	return t, err
}
