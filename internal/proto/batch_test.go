package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"fastreg/internal/types"
)

// batchEnvs is a mixed-kind envelope set for batch tests: requests and
// replies, several keys, every correlation field exercised.
func batchEnvs(tb testing.TB) []Envelope {
	tb.Helper()
	val := types.Value{Tag: types.Tag{TS: 7, WID: types.Writer(1)}, Data: "v7"}
	return []Envelope{
		{From: types.Writer(1), To: types.Server(2), Key: "a", OpID: 1, Round: 1, Payload: Query{}},
		{From: types.Writer(1), To: types.Server(2), Key: "b", OpID: 4, Round: 2, Payload: Update{Val: val}},
		{From: types.Server(2), To: types.Reader(3), Key: "a", OpID: 9, Round: 1, IsReply: true, Payload: QueryAck{Val: val}},
		{From: types.Reader(3), To: types.Server(2), Key: "c/deep", OpID: 2, Round: 1, Payload: FastRead{ValQueue: []types.Value{val}}},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	envs := batchEnvs(t)
	for n := 1; n <= len(envs); n++ {
		b, err := EncodeBatch(envs[:n])
		if err != nil {
			t.Fatalf("EncodeBatch(%d): %v", n, err)
		}
		got, used, err := DecodeBatch(b)
		if err != nil {
			t.Fatalf("DecodeBatch(%d): %v", n, err)
		}
		if used != len(b) {
			t.Fatalf("DecodeBatch consumed %d of %d bytes", used, len(b))
		}
		if !reflect.DeepEqual(got, envs[:n]) {
			t.Fatalf("round trip mismatch:\n got  %v\n want %v", got, envs[:n])
		}
		// Canonical: re-encoding reproduces the exact bytes.
		b2, err := EncodeBatch(got)
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("non-canonical batch (err %v):\n in  %x\n out %x", err, b, b2)
		}
	}
}

func TestBatchRejectsEmpty(t *testing.T) {
	if _, err := EncodeBatch(nil); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("EncodeBatch(nil): got %v, want ErrEmptyBatch", err)
	}
	// A hand-built frame declaring zero envelopes must be rejected too.
	frame := binary.BigEndian.AppendUint32(nil, batchHeader)
	frame = append(frame, batchMarker)
	frame = binary.BigEndian.AppendUint32(frame, 0)
	if _, _, err := DecodeBatch(frame); !errors.Is(err, ErrEmptyBatch) {
		t.Fatalf("zero-count batch: got %v, want ErrEmptyBatch", err)
	}
}

func TestBatchRejectsOversizeCount(t *testing.T) {
	frame := binary.BigEndian.AppendUint32(nil, batchHeader)
	frame = append(frame, batchMarker)
	frame = binary.BigEndian.AppendUint32(frame, MaxBatchEnvelopes+1)
	if _, _, err := DecodeBatch(frame); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize count: got %v, want ErrOversize", err)
	}
	if _, err := EncodeBatch(make([]Envelope, MaxBatchEnvelopes+1)); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize encode count: got %v, want ErrOversize", err)
	}
	hdr := binary.BigEndian.AppendUint32(nil, MaxBatchFrame+1)
	if _, _, err := DecodeBatch(append(hdr, batchMarker)); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize body: got %v, want ErrOversize", err)
	}
}

func TestBatchRejectsTruncated(t *testing.T) {
	b, err := EncodeBatch(batchEnvs(t))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(b); cut++ {
		if _, n, err := DecodeBatch(b[:cut]); err == nil || n != 0 {
			t.Fatalf("truncated batch (%d of %d bytes) accepted", cut, len(b))
		}
	}
	// Count declaring more envelopes than the body holds.
	short, err := EncodeBatch(batchEnvs(t)[:1])
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(short[5:9], 2)
	if _, _, err := DecodeBatch(short); err == nil {
		t.Fatal("batch with inflated count accepted")
	}
}

func TestBatchRejectsSingleFrame(t *testing.T) {
	single, err := Encode(batchEnvs(t)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DecodeBatch(single); !errors.Is(err, ErrBadKind) {
		t.Fatalf("DecodeBatch of single frame: got %v, want ErrBadKind", err)
	}
	// And the other direction: Decode must reject a batch frame (its
	// marker byte is an invalid process role).
	batch, err := EncodeBatch(batchEnvs(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := Decode(batch); err == nil {
		t.Fatal("Decode accepted a batch frame")
	}
}

func TestAppendDecodeBothKinds(t *testing.T) {
	envs := batchEnvs(t)
	single, err := Encode(envs[0])
	if err != nil {
		t.Fatal(err)
	}
	batch, err := EncodeBatch(envs)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := Envelope{From: types.Writer(9), Key: "sentinel", OpID: 99}
	dst := []Envelope{sentinel}
	dst, n, err := AppendDecode(dst, single)
	if err != nil || n != len(single) {
		t.Fatalf("AppendDecode(single): n=%d err=%v", n, err)
	}
	dst, n, err = AppendDecode(dst, batch)
	if err != nil || n != len(batch) {
		t.Fatalf("AppendDecode(batch): n=%d err=%v", n, err)
	}
	want := append([]Envelope{sentinel, envs[0]}, envs...)
	if !reflect.DeepEqual(dst, want) {
		t.Fatalf("AppendDecode accumulated:\n got  %v\n want %v", dst, want)
	}
	// Errors must leave the destination's length untouched.
	before := len(dst)
	if _, n, err := AppendDecode(dst, batch[:7]); err == nil || n != 0 {
		t.Fatalf("truncated frame accepted: n=%d err=%v", n, err)
	}
	if len(dst) != before {
		t.Fatalf("error changed dst length: %d -> %d", before, len(dst))
	}
}

// TestReadFramesIntoPooledNoAlias drives the full pooled receive cycle
// and proves the no-alias guarantee the receive loops rely on: envelopes
// decoded into a pooled slab stay valid — byte for byte — after the slab
// AND the codec's scratch buffers have been recycled and refilled by
// later, different frames. If the decoder ever returned views into its
// read buffer (or PutEnvs failed to sever the slab), the churn below
// would corrupt the retained envelopes and the final re-encode would not
// reproduce the original frame.
func TestReadFramesIntoPooledNoAlias(t *testing.T) {
	envs := batchEnvs(t)
	frameA, err := EncodeBatch(envs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadFramesInto(bytes.NewReader(frameA), GetEnvs())
	if err != nil || !reflect.DeepEqual(got, envs) {
		t.Fatalf("ReadFramesInto: %v (err %v)", got, err)
	}
	// Retain by-value copies — they share whatever string storage the
	// decode produced — then recycle the slab.
	kept := append([]Envelope(nil), got...)
	PutEnvs(got)
	// Churn both pools with frames full of different bytes.
	noise := Envelope{
		From: types.Writer(2), To: types.Server(1),
		Key: "noise/key-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa", OpID: 1, Round: 1,
		Payload: Update{Val: types.Value{Tag: types.Tag{TS: 1, WID: types.Writer(2)}, Data: "AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"}},
	}
	for i := 0; i < 32; i++ {
		var s bytes.Buffer
		if err := WriteBatch(&s, []Envelope{noise, noise, noise}); err != nil {
			t.Fatal(err)
		}
		g, err := ReadFramesInto(&s, GetEnvs())
		if err != nil {
			t.Fatal(err)
		}
		PutEnvs(g)
	}
	reenc, err := EncodeBatch(kept)
	if err != nil || !bytes.Equal(reenc, frameA) {
		t.Fatalf("retained envelopes corrupted by pool churn (err %v):\n want %x\n got  %x", err, frameA, reenc)
	}
}

// TestPutEnvsClears checks the pooling contract that keeps recycled
// slabs from pinning dead payloads: every element is zeroed before the
// slab enters the pool. The test deliberately peeks through a retained
// view of the array — safe here because nothing else touches the pool
// concurrently.
func TestPutEnvsClears(t *testing.T) {
	s := append(GetEnvs(), batchEnvs(t)...)
	view := s[:len(s):len(s)]
	PutEnvs(s)
	for i := range view {
		if !reflect.DeepEqual(view[i], Envelope{}) {
			t.Fatalf("element %d not cleared by PutEnvs: %v", i, view[i])
		}
	}
	// Oversize slabs are dropped, not pooled (can't observe the pool
	// directly; just ensure the call doesn't panic on the boundary).
	PutEnvs(make([]Envelope, maxPooledEnvs+1))
}

func TestReadFramesBothKinds(t *testing.T) {
	envs := batchEnvs(t)
	var stream bytes.Buffer
	if err := WriteFrame(&stream, envs[0]); err != nil {
		t.Fatal(err)
	}
	if err := WriteBatch(&stream, envs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrames(&stream)
	if err != nil || len(got) != 1 || !reflect.DeepEqual(got[0], envs[0]) {
		t.Fatalf("single frame: %v %v", got, err)
	}
	got, err = ReadFrames(&stream)
	if err != nil || !reflect.DeepEqual(got, envs) {
		t.Fatalf("batch frame: %v %v", got, err)
	}
	if _, err := ReadFrames(&stream); err == nil {
		t.Fatal("ReadFrames on empty stream should fail")
	}
}
