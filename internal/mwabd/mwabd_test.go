package mwabd

import (
	"testing"

	"fastreg/internal/atomicity"
	"fastreg/internal/chains"
	"fastreg/internal/netsim"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

func cfg(s, t, r, w int) quorum.Config { return quorum.Config{S: s, T: t, R: r, W: w} }

func TestMetadata(t *testing.T) {
	p := New()
	if p.Name() != "W2R2" || p.WriteRounds() != 2 || p.ReadRounds() != 2 {
		t.Fatalf("metadata: %s W%d R%d", p.Name(), p.WriteRounds(), p.ReadRounds())
	}
	nb := NewNoWriteBack()
	if nb.Name() != "W2R1-nowb" || nb.ReadRounds() != 1 {
		t.Fatalf("ablation metadata: %s R%d", nb.Name(), nb.ReadRounds())
	}
}

func TestImplementableMatchesMajority(t *testing.T) {
	cases := []struct {
		s, tt int
		want  bool
	}{
		{3, 1, true}, {5, 2, true}, {4, 2, false}, {2, 1, false},
	}
	for _, c := range cases {
		if got := New().Implementable(cfg(c.s, c.tt, 2, 2)); got != c.want {
			t.Errorf("Implementable(S=%d,t=%d) = %v, want %v", c.s, c.tt, got, c.want)
		}
	}
	if NewNoWriteBack().Implementable(cfg(5, 1, 2, 2)) {
		t.Error("the no-write-back ablation must not claim atomicity")
	}
}

func TestRandomizedSchedulesStayAtomic(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sim := netsim.MustNew(cfg(5, 2, 2, 2), New(), netsim.WithSeed(seed), netsim.WithDelay(netsim.UniformDelay(1, 120)))
		var spawn func(c int, write bool, n int)
		spawn = func(c int, write bool, n int) {
			if n == 0 {
				return
			}
			op := sim.Reader(c).ReadOp()
			if write {
				op = sim.Writer(c).WriteOp("x")
			}
			sim.InvokeAt(sim.Now()+1, op, func(types.Value, error) { spawn(c, write, n-1) })
		}
		for c := 1; c <= 2; c++ {
			spawn(c, true, 4)
			spawn(c, false, 4)
		}
		sim.Run()
		h := sim.History()
		if len(h.Completed()) != 16 {
			t.Fatalf("seed %d: completed %d", seed, len(h.Completed()))
		}
		if res := atomicity.Check(h); !res.Atomic {
			t.Fatalf("seed %d: %v\n%s", seed, res, h)
		}
	}
}

// The write-back is what makes W2R2 atomic: without it, a pending write
// visible on one server can be seen by one reader and missed by the next —
// a new-old inversion, built deterministically with the scripted
// interpreter.
func TestNoWriteBackExhibitsInversion(t *testing.T) {
	c := cfg(3, 1, 2, 2)
	p := NewNoWriteBack()
	ops := []chains.OpMaker{
		{Name: "W1", Rounds: 2, Make: func() register.Operation {
			return p.NewWriter(types.Writer(1), c).WriteOp("v")
		}},
		{Name: "R1", Rounds: 1, Make: func() register.Operation {
			return p.NewReader(types.Reader(1), c).ReadOp()
		}},
		{Name: "R2", Rounds: 1, Make: func() register.Operation {
			return p.NewReader(types.Reader(2), c).ReadOp()
		}},
	}
	global := []chains.RT{{Op: 0, Round: 1}, {Op: 0, Round: 2}, {Op: 1, Round: 1}, {Op: 2, Round: 1}}
	spec := chains.NewSpec("nowb-inversion", 3, ops, global)
	spec.SkipAt(2, chains.RT{Op: 0, Round: 2}) // the update reaches s1 only
	spec.SkipAt(3, chains.RT{Op: 0, Round: 2})
	spec.SkipAt(3, chains.RT{Op: 1, Round: 1}) // r1 hears s1, s2 → sees v
	spec.SkipAt(1, chains.RT{Op: 2, Round: 1}) // r2 hears s2, s3 → misses v
	out, err := spec.Run(func(id types.ProcID) register.ServerLogic { return p.NewServer(id, c) })
	if err != nil {
		t.Fatal(err)
	}
	if got := out.Result("R1").Value.Data; got != "v" {
		t.Fatalf("R1 = %v", out.Result("R1").Value)
	}
	if !out.Result("R2").Value.IsInitial() {
		t.Fatalf("R2 = %v", out.Result("R2").Value)
	}
	if res := atomicity.Check(out.History); res.Atomic {
		t.Fatal("no-write-back inversion judged atomic")
	}
}

// The same schedule with the write-back enabled is atomic: R1's second
// round propagates the value, so R2 cannot miss it.
func TestWriteBackPreventsInversion(t *testing.T) {
	c := cfg(3, 1, 2, 2)
	p := New()
	ops := []chains.OpMaker{
		{Name: "W1", Rounds: 2, Make: func() register.Operation {
			return p.NewWriter(types.Writer(1), c).WriteOp("v")
		}},
		{Name: "R1", Rounds: 2, Make: func() register.Operation {
			return p.NewReader(types.Reader(1), c).ReadOp()
		}},
		{Name: "R2", Rounds: 2, Make: func() register.Operation {
			return p.NewReader(types.Reader(2), c).ReadOp()
		}},
	}
	global := []chains.RT{{Op: 0, Round: 1}, {Op: 0, Round: 2},
		{Op: 1, Round: 1}, {Op: 1, Round: 2}, {Op: 2, Round: 1}, {Op: 2, Round: 2}}
	spec := chains.NewSpec("wb-same-schedule", 3, ops, global)
	spec.SkipAt(2, chains.RT{Op: 0, Round: 2})
	spec.SkipAt(3, chains.RT{Op: 0, Round: 2})
	spec.SkipAt(3, chains.RT{Op: 1, Round: 1})
	spec.SkipAt(3, chains.RT{Op: 1, Round: 2})
	spec.SkipAt(1, chains.RT{Op: 2, Round: 1})
	spec.SkipAt(1, chains.RT{Op: 2, Round: 2})
	out, err := spec.Run(func(id types.ProcID) register.ServerLogic { return p.NewServer(id, c) })
	if err != nil {
		t.Fatal(err)
	}
	if res := atomicity.Check(out.History); !res.Atomic {
		t.Fatalf("write-back schedule not atomic: %v\n%s", res, out.History)
	}
	// R2 now sees the value via R1's write-back on s2.
	if got := out.Result("R2").Value.Data; got != "v" {
		t.Fatalf("R2 = %v, want the written value", out.Result("R2").Value)
	}
}

func TestCrashMidExecution(t *testing.T) {
	sim := netsim.MustNew(cfg(5, 2, 2, 2), New(), netsim.WithSeed(7))
	sim.InvokeAt(0, sim.Writer(1).WriteOp("a"), nil)
	sim.RunUntil(100)
	sim.CrashServer(types.Server(1), sim.Now())
	sim.CrashServer(types.Server(2), sim.Now())
	var got types.Value
	sim.InvokeAt(sim.Now()+1, sim.Reader(1).ReadOp(), func(v types.Value, err error) {
		if err != nil {
			t.Errorf("read: %v", err)
		}
		got = v
	})
	sim.Run()
	if got.Data != "a" {
		t.Fatalf("read %v after 2 crashes with t=2", got)
	}
	if res := atomicity.Check(sim.History()); !res.Atomic {
		t.Fatalf("%v", res)
	}
}
