// Package mwabd implements the W2R2 multi-writer atomic register of Lynch &
// Shvartsman (FTCS 1997), the top of the paper's design-space Hasse diagram
// (Fig 2) and the baseline the W2R1 algorithm is derived from.
//
// Write: round 1 queries all servers for the maximal timestamp; round 2
// updates all servers with (maxTS+1, wid). Read: round 1 queries and picks
// the maximal value; round 2 writes it back. Both operations wait for S − t
// replies per round; atomicity holds iff t < S/2 (Table 1, row 1).
package mwabd

import (
	"fastreg/internal/opkit"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol is the W2R2 implementation. The zero value is ready to use.
type Protocol struct {
	// DisableWriteBack removes the read's second round (ablation only: the
	// resulting one-round read is NOT atomic; see DESIGN.md §5).
	DisableWriteBack bool
}

// New returns the W2R2 protocol.
func New() *Protocol { return &Protocol{} }

// NewNoWriteBack returns the ablation variant whose read skips the
// write-back round.
func NewNoWriteBack() *Protocol { return &Protocol{DisableWriteBack: true} }

// Name implements register.Protocol.
func (p *Protocol) Name() string {
	if p.DisableWriteBack {
		return "W2R1-nowb"
	}
	return "W2R2"
}

// WriteRounds implements register.Protocol.
func (p *Protocol) WriteRounds() int { return 2 }

// ReadRounds implements register.Protocol.
func (p *Protocol) ReadRounds() int {
	if p.DisableWriteBack {
		return 1
	}
	return 2
}

// Implementable implements register.Protocol: atomic iff t < S/2, and only
// with the write-back in place.
func (p *Protocol) Implementable(cfg quorum.Config) bool {
	return !p.DisableWriteBack && cfg.MajorityOK()
}

// NewServer implements register.Protocol.
func (p *Protocol) NewServer(id types.ProcID, _ quorum.Config) register.ServerLogic {
	return opkit.NewStoreServer(id)
}

type writer struct {
	id   types.ProcID
	need int
}

// NewWriter implements register.Protocol.
func (p *Protocol) NewWriter(id types.ProcID, cfg quorum.Config) register.Writer {
	return &writer{id: id, need: cfg.ReplyQuorum()}
}

func (w *writer) ID() types.ProcID { return w.id }

func (w *writer) WriteOp(data string) register.Operation {
	return opkit.NewQueryThenUpdateWrite(w.id, data, w.need)
}

type reader struct {
	id        types.ProcID
	need      int
	writeBack bool
}

// NewReader implements register.Protocol.
func (p *Protocol) NewReader(id types.ProcID, cfg quorum.Config) register.Reader {
	return &reader{id: id, need: cfg.ReplyQuorum(), writeBack: !p.DisableWriteBack}
}

func (r *reader) ID() types.ProcID { return r.id }

func (r *reader) ReadOp() register.Operation {
	if r.writeBack {
		return opkit.NewReadWriteBack(r.id, r.need)
	}
	return opkit.NewReadNoWriteBack(r.id, r.need)
}
