package epoch

import (
	"sync"
	"testing"

	"fastreg/internal/obs"
)

// TestCutoverUnderTraffic is the algorithm's core property: an epoch
// closes exactly when every op charged to it has returned its weight —
// not before (no premature boundary under a live op), not blocked on
// ops of the NEXT epoch (cutover never pauses traffic).
func TestCutoverUnderTraffic(t *testing.T) {
	c := New(nil)
	var stamped []uint64
	c.Stamp(func(e uint64) { stamped = append(stamped, e) })

	if got := c.Epoch(); got != 1 {
		t.Fatalf("open epoch = %d, want 1", got)
	}
	a := c.Borrow()
	b := c.Borrow()
	if a.Epoch != 1 || b.Epoch != 1 || a.Budget == 0 || b.Budget == 0 {
		t.Fatalf("borrows: %+v %+v", a, b)
	}

	if !c.Cut() {
		t.Fatal("first Cut refused")
	}
	if got := c.Epoch(); got != 2 {
		t.Fatalf("open epoch after cut = %d, want 2", got)
	}
	// New traffic flows into epoch 2 while 1 drains.
	d := c.Borrow()
	if d.Epoch != 2 {
		t.Fatalf("post-cut borrow epoch = %d, want 2", d.Epoch)
	}
	if len(stamped) != 0 {
		t.Fatalf("epoch closed with weight still out: stamps %v", stamped)
	}
	// A second cut while 1 is draining must be refused: at most two live
	// phases, which is what bounds op overlap to adjacent epochs.
	if c.Cut() {
		t.Fatal("Cut accepted while previous epoch still draining")
	}

	c.Return(a.Epoch, a.Budget)
	if len(stamped) != 0 {
		t.Fatal("closed early: op b still holds weight")
	}
	c.Return(b.Epoch, b.Budget)
	if len(stamped) != 1 || stamped[0] != 1 {
		t.Fatalf("stamps after full return: %v, want [1]", stamped)
	}
	if c.Outstanding() != int64(d.Budget) {
		t.Fatalf("outstanding = %d, want %d (op d's budget)", c.Outstanding(), d.Budget)
	}

	// Quiescent cut closes immediately.
	c.Return(d.Epoch, d.Budget)
	if !c.Cut() {
		t.Fatal("quiescent Cut refused")
	}
	if len(stamped) != 2 || stamped[1] != 2 {
		t.Fatalf("stamps: %v, want [1 2]", stamped)
	}
}

// TestWeightConservation drives many concurrent borrow/return cycles
// across repeated cutovers and checks the Huang invariant at the end:
// all weight home, every epoch closed exactly once, in order.
func TestWeightConservation(t *testing.T) {
	reg := obs.New()
	c := New(reg)
	var mu sync.Mutex
	var closed []uint64
	c.Stamp(func(e uint64) {
		mu.Lock()
		closed = append(closed, e)
		mu.Unlock()
	})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tk := c.Borrow()
				// Simulate the transport splitting some weight onto
				// frames that come home via the reply path.
				half := tk.Budget / 2
				c.Return(tk.Epoch, tk.Budget-half)
				if half > 0 {
					c.Return(tk.Epoch, half)
				}
			}
		}()
	}
	cuts := make(chan struct{})
	go func() {
		defer close(cuts)
		for i := 0; i < 200; i++ {
			c.Cut()
		}
	}()
	wg.Wait()
	<-cuts
	// One quiescent cut so the final open epoch closes too.
	c.Cut()
	if out := c.Outstanding(); out != 0 {
		t.Fatalf("outstanding weight after all ops returned: %d", out)
	}
	mu.Lock()
	defer mu.Unlock()
	for i := 1; i < len(closed); i++ {
		if closed[i] != closed[i-1]+1 {
			t.Fatalf("epochs closed out of order: %v", closed)
		}
	}
	if len(closed) == 0 {
		t.Fatal("no epoch ever closed")
	}
}

// TestPoolExhaustion checks the halving floor: past sixty-two live
// borrows the pool degenerates to single atoms (and then debt), but the
// ledger stays exact — returns bring it back to whole and the epoch
// still closes.
func TestPoolExhaustion(t *testing.T) {
	c := New(nil)
	var closedAt uint64
	c.Stamp(func(e uint64) { closedAt = e })
	var tickets []Ticket
	for i := 0; i < 100; i++ {
		tk := c.Borrow()
		if tk.Budget == 0 {
			t.Fatalf("borrow %d returned zero weight", i)
		}
		tickets = append(tickets, tk)
	}
	c.Cut()
	for _, tk := range tickets {
		c.Return(tk.Epoch, tk.Budget)
	}
	if closedAt != 1 {
		t.Fatalf("epoch 1 not closed after exhaustion round trip (closed %d)", closedAt)
	}
	if c.Outstanding() != 0 {
		t.Fatalf("outstanding = %d after full return", c.Outstanding())
	}
}

// TestNilCoordinator locks the disabled contract: a nil *Coordinator is
// inert and never panics — transports carry it unconditionally.
func TestNilCoordinator(t *testing.T) {
	var c *Coordinator
	tk := c.Borrow()
	if tk.Epoch != 0 || tk.Budget != 0 {
		t.Fatalf("nil Borrow = %+v, want zero", tk)
	}
	c.Return(1, 5)
	c.Stamp(func(uint64) {})
	c.OnClose(func(uint64) {})
	if c.Cut() {
		t.Fatal("nil Cut succeeded")
	}
	if c.Epoch() != 0 || c.Outstanding() != 0 {
		t.Fatal("nil coordinator reported live state")
	}
}

// TestDisabledPathZeroAllocs pins the epochs-off cost: with no
// coordinator (and no metrics registry), the per-operation borrow /
// return cycle the transport always executes must not allocate.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var c *Coordinator
	if n := testing.AllocsPerRun(200, func() {
		tk := c.Borrow()
		c.Return(tk.Epoch, tk.Budget)
	}); n != 0 {
		t.Fatalf("nil-coordinator borrow/return allocates %.1f/op, want 0", n)
	}
	var reg *obs.Registry
	g := reg.Gauge("x")
	ctr := reg.Counter("y")
	if n := testing.AllocsPerRun(200, func() {
		g.Set(1)
		ctr.Add(1)
	}); n != 0 {
		t.Fatalf("nil-registry metrics allocate %.1f/op, want 0", n)
	}
}
