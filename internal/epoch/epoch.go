// Package epoch implements Huang's weight-throwing termination
// detection (the source paper's companion algorithm; SNIPPETS.md carries
// the TLA+ Huang module) specialized to audit epoch cutover.
//
// The coordinator owns weight One for the open epoch, represented as
// 2^62 indivisible atoms so the dyadic splits of the algorithm are exact
// integer arithmetic. Every client operation Borrows a share when it is
// invoked (half the coordinator's remaining pool, Huang's Half), carries
// atoms on its request frames, and Returns everything it still holds
// when it completes. The algorithm's invariant — the sum of all weight
// held anywhere equals One — means the coordinator observing its pool
// back at One is proof that every operation charged to the epoch has
// finished: termination detected without ever pausing an op.
//
// Cut() starts a cutover: the open epoch begins draining and a fresh
// epoch with weight One opens immediately, so new borrows never block —
// at most two epochs are ever live (one draining, one open), and the
// next Cut is refused until the drain completes. When the draining
// epoch's weight is whole again the coordinator stamps an epoch-boundary
// record (proto.TraceEpoch) into every registered capture log: the
// boundary is FOUND at the true quiescence point of the epoch, not
// imposed by blocking traffic.
//
// The fence this buys, and the one the windowed checker relies on: every
// operation of epoch N completes (in real time) before N's boundary is
// stamped, and epoch N+2 cannot open before N's boundary. So ops of
// epoch N may only overlap ops of epochs N−1 and N+1 — a three-epoch
// window is a complete concurrency closure.
package epoch

import (
	"sync"

	"fastreg/internal/obs"
)

// TotalWeight is weight One in atoms: 2^62, so sixty-two exact halvings
// are available before the pool degenerates (see Borrow's floor).
const TotalWeight = int64(1) << 62

// Ticket is one operation's borrowed weight: the epoch it is charged to
// and the atoms it holds. The holder may attach parts of the budget to
// request frames (Envelope.Weight) but must keep at least one atom until
// completion, so the epoch cannot close under a live op. A zero Ticket
// (Epoch 0) means no coordinator is attached.
type Ticket struct {
	Epoch  uint64
	Budget uint64
}

// phase is one epoch's weight ledger. remaining is the coordinator's
// pool; TotalWeight−remaining is the weight out with in-flight ops.
// remaining goes negative if borrows outrun the dyadic pool (≈2^62
// concurrent ops after the halving floor kicks in) — the ledger stays
// exact either way, the close condition is remaining == TotalWeight.
type phase struct {
	epoch     uint64
	remaining int64
}

// Coordinator hosts the weight ledger for a fleet's continuous audit.
// All methods are safe for concurrent use and safe on a nil receiver
// (the disabled coordinator: Borrow hands out zero tickets and Return is
// a no-op), so transports can carry a nil *Coordinator unconditionally.
//
//lint:nildisabled
type Coordinator struct {
	mu sync.Mutex
	// guardedby: mu
	open phase
	// guardedby: mu
	closing phase // epoch 0: nothing draining
	// guardedby: mu — true from close trigger until boundary stamps are
	// written, so successive boundaries land in log order.
	stamping bool
	// guardedby: mu
	stamps []func(epoch uint64)
	// guardedby: mu
	onClose func(epoch uint64)

	closed  *obs.Counter
	returns *obs.Counter
	late    *obs.Counter
}

// New creates a coordinator with epoch 1 open and holding weight One.
// reg may be nil (metrics off).
func New(reg *obs.Registry) *Coordinator {
	c := &Coordinator{
		open:    phase{epoch: 1, remaining: TotalWeight},
		closed:  reg.Counter("audit.epoch.closed"),
		returns: reg.Counter("audit.epoch.returns"),
		late:    reg.Counter("audit.epoch.late_returns"),
	}
	reg.GaugeFunc("audit.epoch.current", func() int64 { return int64(c.Epoch()) })
	reg.GaugeFunc("audit.epoch.outstanding_weight", c.Outstanding)
	return c
}

// Stamp registers a boundary sink — typically audit.(*Writer).Epoch —
// called once per closed epoch, after every record of that epoch already
// reached the log and before any later epoch's boundary.
func (c *Coordinator) Stamp(fn func(epoch uint64)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stamps = append(c.stamps, fn)
}

// OnClose registers a notification callback invoked (off the caller's
// lock, after boundary stamps) with each closed epoch number.
func (c *Coordinator) OnClose(fn func(epoch uint64)) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.onClose = fn
}

// Epoch returns the open epoch (0 on a nil coordinator).
func (c *Coordinator) Epoch() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.open.epoch
}

// Outstanding returns the total weight currently out with in-flight ops
// across both live phases, in atoms.
func (c *Coordinator) Outstanding() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := TotalWeight - c.open.remaining
	if c.closing.epoch != 0 {
		out += TotalWeight - c.closing.remaining
	}
	return out
}

// Borrow charges a new operation to the open epoch and hands it its
// weight: half the pool (Huang's SendMsg split), floored at one atom so
// an in-flight op always holds weight > 0.
func (c *Coordinator) Borrow() Ticket {
	if c == nil {
		return Ticket{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.open.remaining / 2
	if w < 1 {
		w = 1
	}
	c.open.remaining -= w
	return Ticket{Epoch: c.open.epoch, Budget: uint64(w)}
}

// Return gives weight back to the epoch it was borrowed from: the
// remainder of a completed op's budget, or a reply-carried share
// harvested by the transport. Weight for an epoch that already closed is
// impossible by construction (an epoch closes only when its weight is
// whole), so an unknown epoch is counted and dropped rather than
// corrupting a live ledger.
func (c *Coordinator) Return(epoch uint64, w uint64) {
	if c == nil || w == 0 {
		return
	}
	c.mu.Lock()
	c.returns.Add(1)
	switch epoch {
	case c.open.epoch:
		c.open.remaining += int64(w)
		c.mu.Unlock()
	case c.closing.epoch:
		c.closing.remaining += int64(w)
		if c.closing.remaining == TotalWeight {
			c.finishCloseLocked() // unlocks
			return
		}
		c.mu.Unlock()
	default:
		c.late.Add(1)
		c.mu.Unlock()
	}
}

// Cut starts a cutover: the open epoch begins draining and the next
// epoch opens with weight One, so borrows never block. Returns false
// without effect while a previous cutover is still draining or stamping
// (at most two live phases — the three-epoch overlap closure the
// windowed checker depends on). If the open epoch is already quiescent
// the boundary is stamped before Cut returns.
func (c *Coordinator) Cut() bool {
	if c == nil {
		return false
	}
	c.mu.Lock()
	if c.closing.epoch != 0 || c.stamping {
		c.mu.Unlock()
		return false
	}
	c.closing = c.open
	c.open = phase{epoch: c.closing.epoch + 1, remaining: TotalWeight}
	if c.closing.remaining == TotalWeight {
		c.finishCloseLocked() // unlocks
		return true
	}
	c.mu.Unlock()
	return true
}

// finishCloseLocked completes the draining epoch: called with mu held,
// releases it to run boundary stamps and the close callback outside the
// lock. The stamping flag keeps the next Cut (and so the next close) out
// until the stamps are durably ordered behind this one.
func (c *Coordinator) finishCloseLocked() {
	done := c.closing.epoch
	c.closing = phase{}
	c.stamping = true
	stamps := c.stamps
	cb := c.onClose
	c.mu.Unlock()
	for _, fn := range stamps {
		fn(done)
	}
	c.mu.Lock()
	c.stamping = false
	c.mu.Unlock()
	c.closed.Add(1)
	if cb != nil {
		cb(done)
	}
}
