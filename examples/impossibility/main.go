// Impossibility: the executable Theorem 1. The three-phase chain argument
// of Sections 3–4 is run against a full-info fast-write candidate; the
// program prints the chain construction (critical server, β chains, zigzag
// links) and the concrete execution whose history violates atomicity.
//
//	go run ./examples/impossibility
package main

import (
	"fmt"
	"log"

	"fastreg"
)

func main() {
	fmt.Println("Theorem 1: no fast-write (W1R2) multi-writer atomic register exists")
	fmt.Println("for W ≥ 2, R ≥ 2, t ≥ 1. Running the chain argument as code:")
	fmt.Println()

	for _, s := range []int{3, 5, 7} {
		rep, err := fastreg.ProveFastWriteImpossible(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Summary)
		fmt.Printf("  → critical server s%d, violation exhibited at %s (links intact: %v)\n\n",
			rep.CriticalServer, rep.FirstViolation, rep.LinksHold)
	}

	fmt.Println("The naive tag-based fast write fails even earlier (at the chain ends):")
	rep, err := fastreg.ProveFastWriteImpossibleFor(fastreg.W1R2, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary)
}
