// Fastread: the paper's W2R1 algorithm (Algorithms 1 & 2) against the W2R2
// baseline. Where R < S/t − 2 holds, reads finish in ONE round trip instead
// of two — at identical atomicity guarantees. The deterministic simulator
// makes the latency difference exact.
//
//	go run ./examples/fastread
package main

import (
	"fmt"
	"log"

	"fastreg"
)

func main() {
	cfg := fastreg.DefaultConfig() // S=5, t=1, R=2: 2 < 5/1 − 2 ✓
	fmt.Printf("configuration %+v\n", cfg)
	fmt.Printf("fast read feasible (R < S/t − 2): %v\n",
		fastreg.FastReadFeasible(cfg.Servers, cfg.MaxCrashes, cfg.Readers))
	fmt.Printf("max readers for fast reads at S=%d, t=%d: %d\n\n",
		cfg.Servers, cfg.MaxCrashes, fastreg.MaxFastReaders(cfg.Servers, cfg.MaxCrashes))

	const oneWay = 50 // constant one-way delay → RTT = 100 virtual time units
	for _, p := range []fastreg.Protocol{fastreg.W2R2, fastreg.W2R1} {
		sim, err := fastreg.NewSimulation(cfg, p, fastreg.SimOptions{MinDelay: oneWay, MaxDelay: oneWay})
		if err != nil {
			log.Fatal(err)
		}
		res := sim.Run(10, 10)
		fmt.Printf("%s:\n  write latency %s (%.1f RTT)\n  read  latency %s (%.1f RTT)\n  atomic: %v\n",
			p,
			res.WriteLatency, res.WriteLatency.Mean/(2*oneWay),
			res.ReadLatency, res.ReadLatency.Mean/(2*oneWay),
			res.Check.Atomic)
	}

	fmt.Println("\nthe fast read halves read latency; past the boundary the paper proves it impossible:")
	fmt.Printf("  S=5 t=1 R=3 feasible? %v (3 ≥ 5/1 − 2)\n", fastreg.FastReadFeasible(5, 1, 3))
}
