// Kvstore: a replicated key-value store on per-key atomic registers — the
// storage-system shape (Cassandra/Redis/Riak) that motivates the paper.
// The store is fastreg.Open's default backend, the multiplexed runtime:
// one fleet of 7 server goroutines serves all keys (key-tagged messages,
// sharded per-key state), instead of a full cluster per key. Two writer
// and two reader session handles hammer three keys concurrently while a
// server crashes mid-run — killing its replica of every key at once;
// every per-key history is then checked for atomicity (locality,
// Section 2.1).
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"
	"sync"

	"fastreg"
)

func main() {
	cfg := fastreg.Config{Servers: 7, MaxCrashes: 1, Readers: 2, Writers: 2}
	store, err := fastreg.Open(cfg, fastreg.W2R1) // fast reads: 2 < 7/1 − 2
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()

	keys := []string{"users:alice", "users:bob", "config:flags"}
	var wg sync.WaitGroup
	for c := 1; c <= 2; c++ {
		w, err := store.Writer(c)
		if err != nil {
			log.Fatal(err)
		}
		r, err := store.Reader(c)
		if err != nil {
			log.Fatal(err)
		}
		c := c
		wg.Add(2)
		go func() { // writer session
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := keys[i%len(keys)]
				if _, err := w.Put(ctx, k, fmt.Sprintf("w%d-v%d", c, i)); err != nil {
					log.Printf("put: %v", err)
					return
				}
			}
		}()
		go func() { // reader session
			defer wg.Done()
			for i := 0; i < 10; i++ {
				k := keys[i%len(keys)]
				if _, _, _, err := r.Get(ctx, k); err != nil {
					log.Printf("get: %v", err)
					return
				}
				if i == 5 && c == 1 {
					store.CrashServer(4)
					log.Printf("crashed server s4 mid-run (t=%d tolerates it)", cfg.MaxCrashes)
				}
			}
		}()
	}
	wg.Wait()

	r1, _ := store.Reader(1)
	for _, k := range keys {
		v, _, ok, err := r1.Get(ctx, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s = %q (written: %v)\n", k, v, ok)
	}
	res := store.Check()
	fmt.Printf("atomicity of all %d operations across %d keys: %v (%s)\n",
		res.Operations, len(store.Keys()), res.Atomic, res.Explanation)
	fmt.Printf("goroutines serving %d keys: %d — one multiplexed fleet; stays flat as keys grow, where per-key clusters would add %d goroutines per key\n",
		len(store.Keys()), runtime.NumGoroutine(), cfg.Servers)
}
