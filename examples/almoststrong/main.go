// Almoststrong: the paper's future-work direction (Section 7) made
// concrete. When an application insists on fast operations in a quadrant
// where atomicity is impossible, how inconsistent does the register get?
// This example runs the impossible quadrants (W1R2, W1R1) under adversarial
// schedules and quantifies the deviation: stale-read rate, worst staleness
// and k-atomicity (reads return one of the k freshest values, after the
// authors' 2-atomicity line of work).
//
//	go run ./examples/almoststrong
package main

import (
	"fmt"
	"log"

	"fastreg"
)

func main() {
	cfg := fastreg.DefaultConfig()
	fmt.Println("Quantifying the inconsistency of fast-but-impossible protocols")
	fmt.Printf("(config %+v; 10 writes/writer, 10 reads/reader, random delays)\n\n", cfg)

	for _, p := range []fastreg.Protocol{fastreg.W2R2, fastreg.W2R1, fastreg.W1R2, fastreg.W1R1} {
		worstK, stale, runs := 1, 0.0, 0
		atomicRuns := 0
		for seed := int64(1); seed <= 20; seed++ {
			sim, err := fastreg.NewSimulation(cfg, p, fastreg.SimOptions{Seed: seed, MinDelay: 1, MaxDelay: 200})
			if err != nil {
				log.Fatal(err)
			}
			res := sim.Run(10, 10)
			if res.Check.Atomic {
				atomicRuns++
			}
			if res.Consistency.KAtomicity > worstK {
				worstK = res.Consistency.KAtomicity
			}
			stale += res.Consistency.StaleRate
			runs++
		}
		guaranteed, _ := cfg.Implementable(p)
		fmt.Printf("%-5s atomicity guaranteed: %-5v  atomic runs: %2d/%d  worst k-atomicity: %d  mean stale-read rate: %.1f%%\n",
			p, guaranteed, atomicRuns, runs, worstK, 100*stale/float64(runs))
	}

	fmt.Println("\nThe impossible quadrants degrade gracefully: violations show up as")
	fmt.Println("small-k staleness (typically 2-atomicity), not unbounded divergence —")
	fmt.Println("the premise of the authors' almost-strong-consistency line of work.")
}
