// Quickstart: a 5-server multi-writer atomic register (Lynch–Shvartsman
// W2R2) with two writers and two readers, matching Fig 1 of the paper.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fastreg"
)

func main() {
	// S=5 servers tolerating t=1 crash, 2 readers, 2 writers — the paper's
	// canonical configuration.
	cfg := fastreg.DefaultConfig()

	cluster, err := fastreg.NewCluster(cfg, fastreg.W2R2)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Two writers write; the register orders them by (ts, wid) tags.
	v1, err := cluster.Write(1, "from writer 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w1 wrote %q as version %s\n", "from writer 1", v1)

	v2, err := cluster.Write(2, "from writer 2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w2 wrote %q as version %s\n", "from writer 2", v2)

	// Both readers see the latest value.
	for r := 1; r <= cfg.Readers; r++ {
		val, ver, err := cluster.Read(r)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("r%d read %q (version %s)\n", r, val, ver)
	}

	// Crash a server — within t, everything keeps working.
	cluster.CrashServer(3)
	fmt.Println("crashed server s3")
	val, ver, err := cluster.Read(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("r1 read %q (version %s) after the crash\n", val, ver)

	// The execution we just produced is atomic (Definition 2.1).
	res := cluster.Check()
	fmt.Printf("atomicity check over %d operations: %v\n", res.Operations, res.Atomic)
}
