// Quickstart: a 5-server multi-writer atomic register store
// (Lynch–Shvartsman W2R2) with two writers and two readers, matching
// Fig 1 of the paper — through the fastreg.Open API: the backend
// (in-process here; WithTCP for a deployed fleet) is configuration, and
// clients are session handles bound to one identity each.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"fastreg"
)

func main() {
	// S=5 servers tolerating t=1 crash, 2 readers, 2 writers — the paper's
	// canonical configuration.
	cfg := fastreg.DefaultConfig()

	store, err := fastreg.Open(cfg, fastreg.W2R2)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	ctx := context.Background()

	// Bind the identities once; out-of-range indices fail here, not at
	// every call.
	w1, _ := store.Writer(1)
	w2, _ := store.Writer(2)

	// Two writers write; the register orders them by (ts, wid) tags.
	v1, err := w1.Put(ctx, "greeting", "from writer 1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w1 wrote %q as version %s\n", "from writer 1", v1)

	v2, err := w2.Put(ctx, "greeting", "from writer 2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("w2 wrote %q as version %s\n", "from writer 2", v2)

	// Both readers see the latest value.
	for i := 1; i <= cfg.Readers; i++ {
		r, _ := store.Reader(i)
		val, ver, _, err := r.Get(ctx, "greeting")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("r%d read %q (version %s)\n", i, val, ver)
	}

	// Crash a server — within t, everything keeps working.
	store.CrashServer(3)
	fmt.Println("crashed server s3")
	r1, _ := store.Reader(1)
	val, ver, _, err := r1.Get(ctx, "greeting")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("r1 read %q (version %s) after the crash\n", val, ver)

	// The execution we just produced is atomic (Definition 2.1).
	res := store.Check()
	fmt.Printf("atomicity check over %d operations: %v\n", res.Operations, res.Atomic)
}
