// Tcpcluster: the full deployment shape of a replicated register store in
// one process — three replica servers listening on real loopback TCP
// sockets (each the equivalent of a cmd/regserver process), and a
// fastreg.Open store with the WithTCP backend driving the W2R2 protocol
// against them over the wire: length-prefixed binary frames, one
// connection per server, write coalescing, quorum waits. Mid-run one
// replica is killed; the surviving S−t = 2 keep every operation
// completing, and the recorded history is checked for atomicity.
//
//	go run ./examples/tcpcluster
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"fastreg"
	"fastreg/internal/mwabd"
	"fastreg/internal/quorum"
	"fastreg/internal/transport"
)

func main() {
	cfg := fastreg.Config{Servers: 3, MaxCrashes: 1, Readers: 2, Writers: 2}
	qcfg := quorum.Config{S: 3, T: 1, R: 2, W: 2}

	// Boot the replica fleet: three listeners on OS-assigned loopback
	// ports, one transport.Server each. In production these are three
	// `regserver` processes on three machines.
	servers := make([]*transport.Server, qcfg.S)
	addrs := make([]string, qcfg.S)
	for i := range servers {
		lis, err := transport.ListenTCP("127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers[i], err = transport.NewServer(qcfg, mwabd.New(), i+1, lis)
		if err != nil {
			log.Fatal(err)
		}
		addrs[i] = servers[i].Addr()
		fmt.Printf("replica s%d listening on %s\n", i+1, addrs[i])
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// The client side: a normal Store whose backend is a TCP client of
	// the fleet — only the Open options differ from an in-process store.
	// In production this is any process anywhere.
	store, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithTCP(addrs...))
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	keys := []string{"users:alice", "users:bob", "config:flags"}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	var wg sync.WaitGroup
	for w := 1; w <= cfg.Writers; w++ {
		h, err := store.Writer(w)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(w int, h *fastreg.Writer) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := keys[(w+i)%len(keys)]
				if _, err := h.Put(ctx, key, fmt.Sprintf("w%d#%d", w, i)); err != nil {
					log.Fatalf("put: %v", err)
				}
				if i == 15 && w == 1 {
					fmt.Println("killing replica s3 mid-workload…")
					servers[2].Close() // kernel drops the socket: clients see a dead peer
				}
			}
		}(w, h)
	}
	for r := 1; r <= cfg.Readers; r++ {
		h, err := store.Reader(r)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(r int, h *fastreg.Reader) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := keys[(r+i)%len(keys)]
				if _, _, _, err := h.Get(ctx, key); err != nil {
					log.Fatalf("get: %v", err)
				}
			}
		}(r, h)
	}
	wg.Wait()

	r1, _ := store.Reader(1)
	for _, key := range keys {
		v, _, ok, err := r1.Get(ctx, key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s = %q (ok=%v)\n", key, v, ok)
	}

	res := store.Check()
	fmt.Printf("atomicity over TCP, one replica down: %v (%d ops checked)\n", res.Atomic, res.Operations)
	if !res.Atomic {
		log.Fatal(res.Explanation)
	}
}
