module fastreg

go 1.24
