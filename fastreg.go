// Package fastreg is a faithful, executable reproduction of
//
//	Kaile Huang, Yu Huang, Hengfeng Wei:
//	"Fine-grained Analysis on Fast Implementations of Multi-writer Atomic
//	Registers", PODC 2020 (arXiv:2001.07855).
//
// It provides every protocol in the paper's design space (Fig 2 / Table 1)
// over a simulated asynchronous client-server message-passing system, an
// atomicity (linearizability) checker for Definition 2.1, the paper's
// W2R1 fast-read algorithm (Algorithms 1 & 2), and the impossibility
// machinery of Sections 3–4 as runnable code.
//
// The three entry points:
//
//   - Open: a replicated key-value store (one atomic register per key)
//     over a configurable backend — the in-process multiplexed fleet by
//     default, WithTCP for a deployed regserver fleet, WithPerKey for
//     the legacy cluster-per-key runtime — driven through context-first
//     session handles (Store.Writer / Store.Reader). Cluster is the
//     single-register special case;
//   - Simulation: a deterministic discrete-event run for latency and
//     adversarial-schedule experiments;
//   - the analysis functions (FastReadFeasible, ProveFastWriteImpossible,
//     FastReadBoundary) exposing the paper's results directly.
package fastreg

import (
	"context"
	"errors"
	"fmt"

	"fastreg/internal/atomicity"
	"fastreg/internal/protocols"
	"fastreg/internal/quorum"
	"fastreg/internal/register"
	"fastreg/internal/types"
)

// Protocol selects a point of the design space (Fig 2).
type Protocol string

// The available protocols. W2R2 and W2R1 can be atomic (under their Table 1
// conditions); W1R2 and W1R1 are the provably impossible quadrants, kept
// runnable so their violations can be exhibited; ABD is the single-writer
// baseline; FullInfo is the Section 4.1 full-info fast-write strawman used
// by the impossibility engine.
const (
	W2R2     Protocol = "W2R2"
	W2R1     Protocol = "W2R1"
	W1R2     Protocol = "W1R2"
	W1R1     Protocol = "W1R1"
	ABD      Protocol = "ABD"
	FullInfo Protocol = "FullInfo"
)

// ErrUnknownProtocol reports an unrecognized Protocol value.
var ErrUnknownProtocol = errors.New("fastreg: unknown protocol")

// impl resolves the selector to the implementation (the switch itself
// lives in internal/protocols so cmd/regserver and cmd/regclient resolve
// names identically).
func (p Protocol) impl() (register.Protocol, error) {
	impl, err := protocols.New(string(p))
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProtocol, p)
	}
	return impl, nil
}

// Protocols lists all selectable protocols (derived from the same table
// New resolves against, so the listing can't go stale).
func Protocols() []Protocol {
	names := protocols.Names()
	out := make([]Protocol, len(names))
	for i, n := range names {
		out[i] = Protocol(n)
	}
	return out
}

// Config is the cluster shape of the system model (Fig 1): Servers
// replicas of which at most MaxCrashes may fail, plus Readers and Writers
// clients.
type Config struct {
	Servers    int
	MaxCrashes int
	Readers    int
	Writers    int
}

// DefaultConfig is the paper's canonical configuration: S=5, t=1, W=2, R=2.
func DefaultConfig() Config { return Config{Servers: 5, MaxCrashes: 1, Readers: 2, Writers: 2} }

func (c Config) internal() quorum.Config {
	return quorum.Config{S: c.Servers, T: c.MaxCrashes, R: c.Readers, W: c.Writers}
}

// Validate reports whether the configuration is structurally sound.
func (c Config) Validate() error { return c.internal().Validate() }

// Implementable reports whether the protocol guarantees atomicity on this
// configuration — the Table 1 condition of its quadrant.
func (c Config) Implementable(p Protocol) (bool, error) {
	impl, err := p.impl()
	if err != nil {
		return false, err
	}
	return impl.Implementable(c.internal()), nil
}

// Version identifies a written value: the (ts, wid) tag of Section 5.2.
// Versions are totally ordered; a later read never observes a smaller
// version than an earlier one (atomicity).
type Version struct {
	TS     int64
	Writer int // writer index; 0 for the initial value
}

// Less reports the lexicographic tag order.
func (v Version) Less(o Version) bool {
	if v.TS != o.TS {
		return v.TS < o.TS
	}
	return v.Writer < o.Writer
}

// String renders "(ts,w)".
func (v Version) String() string { return fmt.Sprintf("(%d,w%d)", v.TS, v.Writer) }

func versionOf(val types.Value) Version {
	return Version{TS: val.Tag.TS, Writer: val.Tag.WID.Index}
}

// CheckResult is the atomicity checker's verdict on an execution.
type CheckResult struct {
	Atomic bool
	// Explanation names the violation when !Atomic, or shows a witness
	// linearization when Atomic.
	Explanation string
	// Operations is the number of completed operations checked.
	Operations int
}

// Cluster is a running register: one goroutine per server, blocking client
// calls, crash injection — the Fig 1 system live. It is a single-key
// Store: the register is the store's one (unnamed) key, served by the
// per-key backend, so a Cluster and a Store run identical runtime code.
//
// Prefer Open with session handles for new code; Cluster remains for the
// single-register experiments the paper's figures are built from.
type Cluster struct {
	s   *Store
	cfg Config
}

// clusterKey is the single register's key — the empty string, matching
// the empty key tag single-register envelopes always carried.
const clusterKey = ""

// NewCluster starts a cluster of the given shape running the protocol.
func NewCluster(cfg Config, p Protocol) (*Cluster, error) {
	s, err := Open(cfg, p, WithPerKey())
	if err != nil {
		return nil, err
	}
	return &Cluster{s: s, cfg: cfg}, nil
}

// Write stores value through writer w_i (1-based) and returns the version
// assigned. Writers must be used sequentially; distinct writers may run
// concurrently.
func (c *Cluster) Write(writer int, value string) (Version, error) {
	return c.WriteCtx(context.Background(), writer, value)
}

// WriteCtx is Write with a deadline: when ctx expires before the write's
// reply quorums arrive (e.g. more than MaxCrashes servers have crashed),
// the operation is abandoned with an error wrapping ErrTimeout — its
// effect at the servers is indeterminate.
func (c *Cluster) WriteCtx(ctx context.Context, writer int, value string) (Version, error) {
	w, err := c.s.Writer(writer)
	if err != nil {
		return Version{}, err
	}
	return w.Put(ctx, clusterKey, value)
}

// Read returns the register's value through reader r_i (1-based).
func (c *Cluster) Read(reader int) (string, Version, error) {
	return c.ReadCtx(context.Background(), reader)
}

// ReadCtx is Read with a deadline; see WriteCtx.
func (c *Cluster) ReadCtx(ctx context.Context, reader int) (string, Version, error) {
	r, err := c.s.Reader(reader)
	if err != nil {
		return "", Version{}, err
	}
	v, ver, _, err := r.Get(ctx, clusterKey)
	return v, ver, err
}

// CrashServer crashes server s_i (1-based): it silently drops every
// subsequent request. Crashing more than MaxCrashes servers voids the
// protocol's guarantees (operations may block); an index outside
// [1, Servers] panics.
func (c *Cluster) CrashServer(i int) { c.s.CrashServer(i) }

// Check runs the atomicity checker (Definition 2.1) over everything this
// cluster has executed so far.
func (c *Cluster) Check() CheckResult {
	h := c.s.store.Histories()[clusterKey]
	res := atomicity.Check(h)
	out := CheckResult{Atomic: res.Atomic, Operations: len(h.Completed())}
	out.Explanation = res.String()
	return out
}

// Close shuts the cluster down.
func (c *Cluster) Close() { c.s.Close() }
