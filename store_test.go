package fastreg

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestOpenOptionValidation pins the option/backend compatibility matrix:
// misconfigurations fail at Open, not at first use.
func TestOpenOptionValidation(t *testing.T) {
	cfg := DefaultConfig()
	cases := []struct {
		name string
		opts []Option
	}{
		{"unbatched-inprocess", []Option{WithUnbatchedSends()}},
		{"unbatched-perkey", []Option{WithPerKey(), WithUnbatchedSends()}},
		{"multiconn-inprocess", []Option{WithConnsPerLink(4)}},
		{"multiconn-perkey", []Option{WithPerKey(), WithConnsPerLink(4)}},
		{"evict-perkey", []Option{WithPerKey(), WithEvictionTTL(time.Minute)}},
		{"tcp-addr-count", []Option{WithTCP(":7001")}}, // 1 address, 5 servers
		{"capture-perkey", []Option{WithPerKey(), WithCapture(t.TempDir())}},
		// Eviction resets per-key history clocks; combined with capture
		// the trace log's time domain would lie (false binding verdicts).
		{"capture-evict", []Option{WithCapture(t.TempDir()), WithEvictionTTL(time.Minute)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if s, err := Open(cfg, W2R2, tc.opts...); err == nil {
				s.Close()
				t.Fatal("Open must reject the option combination")
			}
		})
	}
	if _, err := Open(cfg, Protocol("nope")); !errors.Is(err, ErrUnknownProtocol) {
		t.Fatalf("unknown protocol: %v", err)
	}
}

// TestHandleIdentity pins the session-handle contract: the same handle is
// returned for the same index, so the per-handle guard covers every
// caller of an identity.
func TestHandleIdentity(t *testing.T) {
	s, err := Open(DefaultConfig(), W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w1a, _ := s.Writer(1)
	w1b, _ := s.Writer(1)
	if w1a != w1b {
		t.Fatal("Writer(1) returned distinct handles")
	}
	if w1a.Index() != 1 {
		t.Fatalf("Index() = %d", w1a.Index())
	}
	r2, _ := s.Reader(2)
	if r2.Index() != 2 {
		t.Fatalf("Index() = %d", r2.Index())
	}
}

// TestHandleConcurrentUse pins the misuse guard: an overlapping call on
// one handle fails with ErrHandleInUse instead of corrupting the
// protocol's client state. The overlap is forced deterministically by
// marking the handle busy, exactly the state a concurrent call observes.
func TestHandleConcurrentUse(t *testing.T) {
	s, err := Open(DefaultConfig(), W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	w, _ := s.Writer(1)
	w.busy.Store(true)
	if _, err := w.Put(ctx, "k", "v"); !errors.Is(err, ErrHandleInUse) {
		t.Fatalf("overlapping Put = %v, want ErrHandleInUse", err)
	}
	w.busy.Store(false)
	if _, err := w.Put(ctx, "k", "v"); err != nil {
		t.Fatalf("sequential Put after release: %v", err)
	}

	r, _ := s.Reader(1)
	r.busy.Store(true)
	if _, _, _, err := r.Get(ctx, "k"); !errors.Is(err, ErrHandleInUse) {
		t.Fatalf("overlapping Get = %v, want ErrHandleInUse", err)
	}
	r.busy.Store(false)
	if v, _, ok, err := r.Get(ctx, "k"); err != nil || !ok || v != "v" {
		t.Fatalf("sequential Get after release: %q ok=%v err=%v", v, ok, err)
	}
}

// TestDeprecatedWrappersShareRuntime pins that the old constructors are
// thin re-expressions over Open: a KVStore and the Store it exposes see
// the same data.
func TestDeprecatedWrappersShareRuntime(t *testing.T) {
	kvs, err := NewKVStore(DefaultConfig(), W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer kvs.Close()
	if err := kvs.Put(1, "k", "via-wrapper"); err != nil {
		t.Fatal(err)
	}
	r, _ := kvs.Store().Reader(1)
	v, _, ok, err := r.Get(context.Background(), "k")
	if err != nil || !ok || v != "via-wrapper" {
		t.Fatalf("handle read of wrapper write: %q ok=%v err=%v", v, ok, err)
	}
}

// TestClusterCtx pins the satellite fix: Cluster operations accept
// contexts through WriteCtx/ReadCtx while the old signatures keep
// working.
func TestClusterCtx(t *testing.T) {
	c, err := NewCluster(DefaultConfig(), W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write(1, "v1"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.WriteCtx(ctx, 1, "v2"); !IsTimeout(err) {
		t.Fatalf("WriteCtx with cancelled ctx = %v, want ErrTimeout", err)
	}
	if _, _, err := c.ReadCtx(ctx, 1); !IsTimeout(err) {
		t.Fatalf("ReadCtx with cancelled ctx = %v, want ErrTimeout", err)
	}
	v, _, err := c.Read(1)
	if err != nil || v != "v1" {
		t.Fatalf("Read = %q err=%v", v, err)
	}
	if res := c.Check(); !res.Atomic {
		t.Fatalf("cluster history: %s", res.Explanation)
	}
}
