// Public observability surface: Stats, DebugHandler and the
// WithMetrics/WithSlowOpTrace option matrix, on both metric-capable
// backends.
package fastreg_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"fastreg"
	"fastreg/internal/quorum"
)

func driveOps(t *testing.T, s *fastreg.Store) {
	t.Helper()
	ctx := context.Background()
	w, _ := s.Writer(1)
	r, _ := s.Reader(1)
	for i := 0; i < 20; i++ {
		if _, err := w.Put(ctx, "stats-key", "v"); err != nil {
			t.Fatal(err)
		}
		if _, _, _, err := r.Get(ctx, "stats-key"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestStoreStatsInProcess(t *testing.T) {
	s, err := fastreg.Open(fastreg.DefaultConfig(), fastreg.W2R2, fastreg.WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	driveOps(t, s)

	st := s.Stats()
	if !st.Enabled {
		t.Fatal("Stats.Enabled must be true with WithMetrics")
	}
	if st.Writes.Count != 20 || st.Reads.Count != 20 || st.Ops.Count != 40 {
		t.Fatalf("counts: writes=%d reads=%d ops=%d", st.Writes.Count, st.Reads.Count, st.Ops.Count)
	}
	if st.OpsOK != 40 || st.OpsFailed != 0 {
		t.Fatalf("OpsOK=%d OpsFailed=%d", st.OpsOK, st.OpsFailed)
	}
	if st.Writes.P99 <= 0 || st.Ops.P50 <= 0 || st.Ops.Mean <= 0 {
		t.Fatalf("percentiles must be populated: %+v", st.Ops)
	}
	if len(st.Keys) != 1 || st.Keys[0].Key != "stats-key" ||
		st.Keys[0].Reads != 20 || st.Keys[0].Writes != 20 {
		t.Fatalf("KeyStats: %+v", st.Keys)
	}
}

func TestStoreStatsDisabled(t *testing.T) {
	s, err := fastreg.Open(fastreg.DefaultConfig(), fastreg.W2R2)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	driveOps(t, s)

	st := s.Stats()
	if st.Enabled {
		t.Fatal("Stats.Enabled must be false without WithMetrics")
	}
	if st.Ops.Count != 0 {
		t.Fatalf("latency stats must stay zero when disabled: %+v", st.Ops)
	}
	// The per-key workload profile is collected unconditionally.
	if len(st.Keys) != 1 || st.Keys[0].Writes != 20 || st.Keys[0].Reads != 20 {
		t.Fatalf("KeyStats must be populated without metrics: %+v", st.Keys)
	}
}

func TestStoreStatsAndDebugHandlerTCP(t *testing.T) {
	cfg := fastreg.DefaultConfig()
	qcfg := quorum.Config{S: cfg.Servers, T: cfg.MaxCrashes, R: cfg.Readers, W: cfg.Writers}
	_, addrs := bootTCPFleet(t, qcfg)
	s, err := fastreg.Open(cfg, fastreg.W2R2,
		fastreg.WithTCP(addrs...), fastreg.WithMetrics(), fastreg.WithSlowOpTrace(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	driveOps(t, s)

	st := s.Stats()
	if !st.Enabled || st.Ops.Count != 40 || st.Ops.P95 <= 0 {
		t.Fatalf("TCP stats: %+v", st.Ops)
	}
	if st.SlowOps != 0 {
		t.Fatalf("no op should cross an hour threshold, got %d", st.SlowOps)
	}

	srv := httptest.NewServer(s.DebugHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters   map[string]int64           `json:"counters"`
		Histograms map[string]json.RawMessage `json:"histograms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["client.W2R2.ops"] != 40 {
		t.Fatalf("client.W2R2.ops = %d, want 40 (counters: %v)", snap.Counters["client.W2R2.ops"], snap.Counters)
	}
	if _, ok := snap.Histograms["client.W2R2.write.latency_ns"]; !ok {
		t.Fatal("write latency histogram missing from /metrics")
	}
}

func TestObsOptionValidation(t *testing.T) {
	cfg := fastreg.DefaultConfig()
	if s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithPerKey(), fastreg.WithMetrics()); err == nil {
		s.Close()
		t.Fatal("WithPerKey + WithMetrics must be rejected")
	}
	if s, err := fastreg.Open(cfg, fastreg.W2R2, fastreg.WithSlowOpTrace(time.Second)); err == nil {
		s.Close()
		t.Fatal("WithSlowOpTrace on the in-process backend must be rejected")
	}
}
