package fastreg

import (
	"net/http"
	"time"

	"fastreg/internal/keyreg"
	"fastreg/internal/obs"
)

// LatencyStats summarizes one operation-latency distribution: the count,
// exact mean, the percentile ladder and the (bucketed, ~12.5%-accurate)
// maximum, all as durations.
type LatencyStats struct {
	Count uint64
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

func latencyStatsOf(s obs.HistogramSnapshot) LatencyStats {
	return LatencyStats{
		Count: s.Count,
		Mean:  time.Duration(s.Mean()),
		P50:   time.Duration(s.Quantile(0.50)),
		P95:   time.Duration(s.Quantile(0.95)),
		P99:   time.Duration(s.Quantile(0.99)),
		Max:   time.Duration(s.Max()),
	}
}

// KeyStats is one key's workload profile: completed operations by kind
// and how many operations began while another was already in flight on
// the key — the contention signal adaptive protocol selection needs.
type KeyStats struct {
	Key       string
	Reads     int64
	Writes    int64
	Contended int64
}

// Stats is a Store's point-in-time observability snapshot. Enabled
// reports whether the store was opened WithMetrics; without it the
// latency fields stay zero but Keys is still populated — the per-key
// workload counters are maintained unconditionally.
type Stats struct {
	Enabled bool

	// Writes, Reads and their merge Ops summarize operation latency.
	Writes LatencyStats
	Reads  LatencyStats
	Ops    LatencyStats

	// Retries counts re-send ticks while operations waited for a reply
	// quorum (TCP backend; always 0 in-process).
	Retries int64
	// OpsOK and OpsFailed count completed and failed operations.
	OpsOK     int64
	OpsFailed int64

	// SlowOps counts operations over the WithSlowOpTrace threshold.
	SlowOps int64

	// Keys holds every live key's workload profile, sorted by key.
	Keys []KeyStats
}

// Stats snapshots the store's metrics. The latency and counter fields
// need WithMetrics (Enabled reports whether they are live); the per-key
// profiles are always collected. Safe to call concurrently with
// operations.
func (s *Store) Stats() Stats {
	var out Stats
	b := s.store.Backend()
	if m, ok := b.(interface{ Metrics() *obs.OpMetrics }); ok {
		if om := m.Metrics(); om != nil {
			out.Enabled = true
			ws := om.WriteLatency.Snapshot()
			rs := om.ReadLatency.Snapshot()
			out.Writes = latencyStatsOf(ws)
			out.Reads = latencyStatsOf(rs)
			ws.Merge(rs)
			out.Ops = latencyStatsOf(ws)
			out.Retries = om.Retries.Value()
			out.OpsOK = om.Ops.Value()
			out.OpsFailed = om.Failed.Value()
		}
	}
	if t, ok := b.(interface{ Tracer() *obs.Tracer }); ok {
		out.SlowOps = t.Tracer().SlowCount()
	}
	if k, ok := b.(interface{ KeyStats() []keyreg.KeyStats }); ok {
		ks := k.KeyStats()
		out.Keys = make([]KeyStats, len(ks))
		for i, st := range ks {
			out.Keys[i] = KeyStats{Key: st.Key, Reads: st.Reads, Writes: st.Writes, Contended: st.Contended}
		}
	}
	return out
}

// DebugHandler returns the store's debug HTTP surface — /metrics (the
// registry snapshot as JSON), /healthz, /debug/slowops and the standard
// /debug/pprof handlers — the same endpoint shape every fleet binary
// mounts behind -debug-addr. It works on any store: without WithMetrics
// the metric maps are simply empty.
func (s *Store) DebugHandler() http.Handler {
	return obs.Handler(s.obsReg, s.tracer)
}
